#include "univsa/hw/timing_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/data/benchmarks.h"
#include "univsa/report/paper_constants.h"

namespace univsa::hw {
namespace {

vsa::ModelConfig config_of(const std::string& task) {
  return data::find_benchmark(task).config;
}

TEST(TimingModelTest, AlphaIsMaxOfKernelAndLogChannels) {
  vsa::ModelConfig c = config_of("ISOLET");
  c.D_K = 3;
  c.D_H = 4;  // log2 = 2
  EXPECT_EQ(conv_iteration_cycles(c), 3u);
  c.D_H = 16;  // log2 = 4
  EXPECT_EQ(conv_iteration_cycles(c), 4u);
  c.D_K = 5;
  EXPECT_EQ(conv_iteration_cycles(c), 5u);
  c.D_L = 1;
  c.D_H = 1;
  EXPECT_EQ(conv_iteration_cycles(c), 5u);
}

TEST(TimingModelTest, BiConvCyclesFollowFigFive) {
  // W'·L'·D_K iterations × α cycles.
  const vsa::ModelConfig c = config_of("ISOLET");  // (16,40), D_K=3, D_H=4
  const StageCycles s = stage_cycles(c);
  EXPECT_EQ(s.biconv, 640u * 3u * 3u);
}

TEST(TimingModelTest, BiConvIsTheBottleneckOnEveryBenchmark) {
  // The premise of the paper's sequential-DVP design decision (Sec. IV-A)
  // and of Fig. 6: BiConv dominates the schedule.
  for (const auto& b : data::table1_benchmarks()) {
    const StageCycles s = stage_cycles(b.config);
    EXPECT_EQ(s.interval(), s.biconv) << b.spec.name;
    EXPECT_GT(s.biconv, s.dvp) << b.spec.name;
    EXPECT_GT(s.biconv, s.encoding) << b.spec.name;
    EXPECT_GT(s.biconv, s.similarity) << b.spec.name;
  }
}

TEST(TimingModelTest, ThroughputMatchesTableFourWithinTolerance) {
  // With the calibrated controller overhead, the five D_K = 3 tasks land
  // within ~1.5% of the paper's throughput; CHB-IB (D_K = 5) is the
  // documented outlier (EXPERIMENTS.md) at ~22%.
  for (const auto& paper : report::paper_table4()) {
    const double model =
        throughput_per_s(config_of(paper.task)) / 1000.0;
    const double rel =
        std::abs(model - paper.throughput_kilo) / paper.throughput_kilo;
    if (paper.task == "CHB-IB") {
      EXPECT_LT(rel, 0.30) << paper.task;
    } else {
      EXPECT_LT(rel, 0.015) << paper.task << " model " << model
                            << " paper " << paper.throughput_kilo;
    }
  }
}

TEST(TimingModelTest, LatencyMatchesTableFourWithinTolerance) {
  for (const auto& paper : report::paper_table4()) {
    const double model = latency_ms(config_of(paper.task));
    const double rel = std::abs(model - paper.latency_ms) / paper.latency_ms;
    if (paper.task == "CHB-IB") {
      EXPECT_LT(rel, 0.30) << paper.task;
    } else {
      EXPECT_LT(rel, 0.05) << paper.task << " model " << model
                           << " paper " << paper.latency_ms;
    }
  }
}

TEST(TimingModelTest, LatencyExceedsIntervalUnderPipelining) {
  // Single-input latency covers all four stages; the streaming interval
  // covers only the slowest.
  for (const auto& b : data::table1_benchmarks()) {
    const TimingParams params;
    const StageCycles s = stage_cycles(b.config);
    EXPECT_GT(latency_cycles(b.config),
              static_cast<std::size_t>(params.controller_overhead *
                                       static_cast<double>(s.interval())) -
                  1)
        << b.spec.name;
  }
}

TEST(TimingModelTest, ThroughputScalesWithClock) {
  const vsa::ModelConfig c = config_of("HAR");
  TimingParams slow;
  slow.clock_mhz = 125.0;
  TimingParams fast;
  fast.clock_mhz = 250.0;
  EXPECT_NEAR(throughput_per_s(c, fast) / throughput_per_s(c, slow), 2.0,
              1e-9);
}

TEST(TimingModelTest, LargerKernelCostsMoreConvCycles) {
  vsa::ModelConfig c = config_of("CHB-B");
  const std::size_t base = stage_cycles(c).biconv;
  c.D_K = 5;
  EXPECT_GT(stage_cycles(c).biconv, base);
}

TEST(TimingModelTest, AllTasksMeetPaperHeadlines) {
  // Sec. V-C: "power < 0.5 W and latency under 0.2ms (0.21 measured),
  // throughput above 5,000/s" — the latency/throughput part.
  for (const auto& b : data::table1_benchmarks()) {
    EXPECT_LT(latency_ms(b.config), 0.26) << b.spec.name;
    EXPECT_GT(throughput_per_s(b.config), 4000.0) << b.spec.name;
  }
}

}  // namespace
}  // namespace univsa::hw
