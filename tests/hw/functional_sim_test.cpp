#include "univsa/hw/functional_sim.h"

#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"

namespace univsa::hw {
namespace {

vsa::ModelConfig small_config(std::size_t d_k = 3) {
  vsa::ModelConfig c;
  c.W = 5;
  c.L = 7;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = d_k;
  c.O = 6;
  c.Theta = 2;
  return c;
}

std::vector<std::uint16_t> random_sample(const vsa::ModelConfig& c,
                                         Rng& rng) {
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

TEST(InputFifoTest, FifoOrderAndUnderflow) {
  InputFifo fifo;
  fifo.push(3);
  fifo.push(1);
  EXPECT_EQ(fifo.size(), 2u);
  EXPECT_EQ(fifo.pop(), 3);
  EXPECT_EQ(fifo.pop(), 1);
  EXPECT_TRUE(fifo.empty());
  EXPECT_THROW(fifo.pop(), std::invalid_argument);
}

class FunctionalEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FunctionalEquivalenceTest, DatapathMatchesSoftwareModelBitExactly) {
  // Invariant (1): every accelerator stage equals the vsa::Model stage.
  Rng rng(GetParam());
  const vsa::ModelConfig c = small_config(GetParam() % 2 ? 3 : 5);
  const vsa::Model model = vsa::Model::random(c, rng);
  const Accelerator accel(model);

  for (int trial = 0; trial < 5; ++trial) {
    const auto values = random_sample(c, rng);
    const RunTrace trace = accel.run(values);
    const vsa::Prediction sw = model.predict(values);
    EXPECT_EQ(trace.prediction.label, sw.label);
    EXPECT_EQ(trace.prediction.scores, sw.scores);
    EXPECT_EQ(trace.sample_vector, model.encode(values));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionalEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FunctionalSimTest, CountedCyclesEqualClosedFormTimingModel) {
  // Invariant (2): the executable machine and the analytic model agree.
  Rng rng(42);
  for (const std::size_t d_k : {3u, 5u}) {
    const vsa::ModelConfig c = small_config(d_k);
    const vsa::Model model = vsa::Model::random(c, rng);
    const Accelerator accel(model);
    const RunTrace trace = accel.run(random_sample(c, rng));
    const StageCycles expected = stage_cycles(c);
    EXPECT_EQ(trace.cycles.dvp, expected.dvp);
    EXPECT_EQ(trace.cycles.biconv, expected.biconv);
    EXPECT_EQ(trace.cycles.encoding, expected.encoding);
    EXPECT_EQ(trace.cycles.similarity, expected.similarity);
  }
}

TEST(FunctionalSimTest, TableOneConfigCyclesMatchFormulas) {
  // Run the real ISOLET-scale geometry once through the machine.
  Rng rng(7);
  const vsa::ModelConfig c = data::find_benchmark("ISOLET").config;
  const vsa::Model model = vsa::Model::random(c, rng);
  const Accelerator accel(model);
  const RunTrace trace = accel.run(random_sample(c, rng));
  EXPECT_EQ(trace.cycles.biconv, 640u * 3u * 3u);
  const StageCycles expected = stage_cycles(c);
  EXPECT_EQ(trace.cycles.dvp, expected.dvp);
  EXPECT_EQ(trace.cycles.encoding, expected.encoding);
  EXPECT_EQ(trace.cycles.similarity, expected.similarity);
}

TEST(FunctionalSimTest, DoubleBufferSwapsOncePerOutputRow) {
  Rng rng(9);
  const vsa::ModelConfig c = small_config();
  const vsa::Model model = vsa::Model::random(c, rng);
  const Accelerator accel(model);
  const RunTrace trace = accel.run(random_sample(c, rng));
  EXPECT_EQ(trace.buffer_swaps, c.W);
}

TEST(FunctionalSimTest, AccuracyMatchesSoftwareModel) {
  Rng rng(10);
  const vsa::ModelConfig c = small_config();
  const vsa::Model model = vsa::Model::random(c, rng);
  const Accelerator accel(model);

  data::Dataset d(c.W, c.L, c.C, c.M);
  for (int i = 0; i < 30; ++i) {
    d.add(random_sample(c, rng), static_cast<int>(rng.uniform_index(c.C)));
  }
  EXPECT_EQ(accel.accuracy(d), model.accuracy(d));
}

TEST(FunctionalSimTest, RejectsShortSample) {
  Rng rng(11);
  const vsa::ModelConfig c = small_config();
  const vsa::Model model = vsa::Model::random(c, rng);
  const Accelerator accel(model);
  EXPECT_THROW(accel.run(std::vector<std::uint16_t>(3, 0)),
               std::invalid_argument);
}

TEST(DvpUnitTest, SequentialOneFeaturePerCycle) {
  Rng rng(12);
  const vsa::ModelConfig c = small_config();
  const vsa::Model model = vsa::Model::random(c, rng);
  TimingParams params;
  const DvpUnit unit(model, params);
  InputFifo fifo;
  const auto values = random_sample(c, rng);
  for (const auto v : values) fifo.push(v);
  const DvpResult r = unit.process(fifo);
  EXPECT_EQ(r.cycles, c.features() + params.dvp_pipeline_depth);
  EXPECT_TRUE(fifo.empty());
  // Output equals the software projection.
  const auto sw = model.project_values(values);
  for (std::size_t i = 0; i < sw.size(); ++i) {
    EXPECT_EQ(r.volume[i].bits, sw[i].bits);
    EXPECT_EQ(r.volume[i].valid, sw[i].valid);
  }
}

}  // namespace
}  // namespace univsa::hw
