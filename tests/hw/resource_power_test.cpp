#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"
#include "univsa/hw/accelerator.h"
#include "univsa/hw/power_model.h"
#include "univsa/hw/resource_model.h"
#include "univsa/report/paper_constants.h"

namespace univsa::hw {
namespace {

TEST(ResourceModelTest, CalibrationAnchorsIsoletRow) {
  // Table III compares on the ISOLET configuration at 7.92 kLUTs; the
  // global scale is calibrated to that row.
  const auto config = data::find_benchmark("ISOLET").config;
  const ResourceEstimate e = estimate_resources(config);
  EXPECT_NEAR(e.total_luts(), 7920.0, 1.0);
}

TEST(ResourceModelTest, NoDspsAnywhere) {
  // The datapath is XNOR/popcount — Table IV reports 0 DSPs on all tasks.
  for (const auto& b : data::table1_benchmarks()) {
    EXPECT_EQ(estimate_resources(b.config).dsps, 0u) << b.spec.name;
  }
}

TEST(ResourceModelTest, BramsMatchTableFourOnMostTasks) {
  // Eq. 5 bits in 36-kbit blocks reproduces Table IV's BRAM column for
  // 5 of 6 tasks (ISOLET rounds to 2 where the paper reports 1 —
  // presumably LUTRAM placement; see EXPERIMENTS.md).
  for (const auto& paper : report::paper_table4()) {
    const auto config = data::find_benchmark(paper.task).config;
    const std::size_t model = estimate_resources(config).brams;
    if (paper.task == "ISOLET") {
      EXPECT_LE(model, paper.brams + 1) << paper.task;
    } else {
      EXPECT_EQ(model, paper.brams) << paper.task;
    }
  }
}

TEST(ResourceModelTest, BiConvDominatesLuts) {
  // Fig. 6's headline: BiConv consumes the most resources of any stage.
  for (const auto& b : data::table1_benchmarks()) {
    const ResourceEstimate e = estimate_resources(b.config);
    EXPECT_GT(e.biconv_luts, e.dvp_luts) << b.spec.name;
    EXPECT_GT(e.biconv_luts, e.encoding_luts) << b.spec.name;
    EXPECT_GT(e.biconv_luts, e.similarity_luts) << b.spec.name;
  }
}

TEST(ResourceModelTest, LutsGrowWithEqSixTerm) {
  vsa::ModelConfig c = data::find_benchmark("HAR").config;
  const double base = estimate_resources(c).total_luts();
  c.O *= 2;
  const double doubled_o = estimate_resources(c).total_luts();
  EXPECT_GT(doubled_o, base);
  c = data::find_benchmark("HAR").config;
  c.D_K = 5;
  EXPECT_GT(estimate_resources(c).total_luts(), base);
}

TEST(ResourceModelTest, StageBreakdownSumsToTotal) {
  const auto config = data::find_benchmark("EEGMMI").config;
  const ResourceEstimate e = estimate_resources(config);
  const double sum = e.dvp_luts + e.biconv_luts + e.encoding_luts +
                     e.similarity_luts + e.buffer_luts + e.control_luts;
  EXPECT_DOUBLE_EQ(sum, e.total_luts());
}

TEST(PowerModelTest, AllTasksUnderHalfWatt) {
  // Sec. V-C headline: every task under 0.5 W — the BCI feasibility line
  // is 1.5 W (SVM survey [15]).
  for (const auto& b : data::table1_benchmarks()) {
    const double p = estimate_power_w(b.config);
    EXPECT_GT(p, 0.0) << b.spec.name;
    EXPECT_LT(p, 0.5) << b.spec.name;
  }
}

TEST(PowerModelTest, ScalesWithClock) {
  const auto config = data::find_benchmark("HAR").config;
  const ResourceEstimate e = estimate_resources(config);
  const double full = estimate_power_w(e, 250.0);
  const double half = estimate_power_w(e, 125.0);
  PowerParams params;
  EXPECT_NEAR(full - params.static_w, 2.0 * (half - params.static_w),
              1e-9);
}

TEST(PowerModelTest, MoreLutsMorePower) {
  ResourceEstimate small;
  small.biconv_luts = 1000.0;
  ResourceEstimate large;
  large.biconv_luts = 30000.0;
  EXPECT_GT(estimate_power_w(large), estimate_power_w(small));
}

TEST(HardwareReportTest, ComposesAllModels) {
  const auto config = data::find_benchmark("ISOLET").config;
  const HardwareReport r = report_for(config);
  EXPECT_NEAR(r.memory_kb, 8.36, 0.005);        // Table II column
  EXPECT_NEAR(r.kiloluts, 7.92, 0.01);          // Table III row
  EXPECT_NEAR(r.throughput_kilo, 27.78, 0.5);   // Table IV row
  EXPECT_NEAR(r.latency_ms, 0.044, 0.004);      // Table IV row
  EXPECT_EQ(r.dsps, 0u);
  EXPECT_GT(r.power_w, 0.0);
  EXPECT_LT(r.power_w, 0.5);
}

TEST(HardwareReportTest, LowerClockLowersThroughput) {
  const auto config = data::find_benchmark("HAR").config;
  TimingParams slow;
  slow.clock_mhz = 100.0;
  const HardwareReport fast = report_for(config);
  const HardwareReport slower = report_for(config, slow);
  EXPECT_GT(fast.throughput_kilo, slower.throughput_kilo);
  EXPECT_LT(fast.latency_ms, slower.latency_ms);
}

TEST(ResourceModelTest, UniVsaWellBelowTableThreeCompetitors) {
  // Sec. V-C ①: compared with SVM/KNN/BNN/QNN implementations (31.85k,
  // 135k, 51.44k, 51.78k LUTs), UniVSA uses a fraction of the logic.
  const auto config = data::find_benchmark("ISOLET").config;
  const double luts = estimate_resources(config).total_luts();
  EXPECT_LT(luts, 0.5 * 31850.0);
}

}  // namespace
}  // namespace univsa::hw
