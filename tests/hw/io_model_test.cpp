#include "univsa/hw/io_model.h"

#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"

namespace univsa::hw {
namespace {

TEST(AxiTransferTest, BeatAndBurstArithmetic) {
  AxiParams p;
  p.data_width_bits = 32;  // 4 bytes/beat
  p.max_burst_beats = 16;
  p.setup_cycles_per_burst = 4;
  const TransferEstimate t = estimate_transfer(100, p);
  EXPECT_EQ(t.beats, 25u);          // ceil(100/4)
  EXPECT_EQ(t.bursts, 2u);          // ceil(25/16)
  EXPECT_EQ(t.cycles, 25u + 8u);
}

TEST(AxiTransferTest, SingleByteStillCostsABurst) {
  const TransferEstimate t = estimate_transfer(1);
  EXPECT_EQ(t.beats, 1u);
  EXPECT_EQ(t.bursts, 1u);
  EXPECT_GT(t.cycles, 1u);
}

TEST(AxiTransferTest, WiderBusFewerCycles) {
  AxiParams narrow;
  narrow.data_width_bits = 32;
  AxiParams wide;
  wide.data_width_bits = 128;
  EXPECT_LT(estimate_transfer(4096, wide).cycles,
            estimate_transfer(4096, narrow).cycles);
}

TEST(AxiTransferTest, MicrosecondsScaleWithClock) {
  AxiParams slow;
  slow.bus_mhz = 100.0;
  AxiParams fast;
  fast.bus_mhz = 200.0;
  EXPECT_NEAR(estimate_transfer(1000, slow).microseconds,
              2.0 * estimate_transfer(1000, fast).microseconds, 1e-9);
}

TEST(AxiTransferTest, ValidatesParams) {
  AxiParams bad;
  bad.data_width_bits = 12;
  EXPECT_THROW(estimate_transfer(10, bad), std::invalid_argument);
  bad = AxiParams{};
  bad.bus_mhz = 0.0;
  EXPECT_THROW(estimate_transfer(10, bad), std::invalid_argument);
}

TEST(IoReportTest, LinkIsCoveredByComputeOnEveryBenchmark) {
  // The paper's implicit assumption: AXI input/output transfers hide
  // under the BiConv-bound streaming interval.
  for (const auto& b : data::table1_benchmarks()) {
    const IoReport r = io_report_for(b.config);
    EXPECT_GT(r.io_us, 0.0) << b.spec.name;
    EXPECT_LT(r.io_fraction, 1.0) << b.spec.name << " io " << r.io_us
                                  << "us vs compute "
                                  << r.compute_interval_us << "us";
  }
}

TEST(IoReportTest, InputDominatesOutput) {
  // W·L bytes in vs C scores out: input is the bigger transfer on all
  // Table I tasks except none.
  for (const auto& b : data::table1_benchmarks()) {
    const IoReport r = io_report_for(b.config);
    EXPECT_GE(r.input.bytes, r.output.bytes) << b.spec.name;
  }
}

TEST(IoReportTest, InputBytesAreWTimesL) {
  const auto config = data::find_benchmark("EEGMMI").config;
  const IoReport r = io_report_for(config);
  EXPECT_EQ(r.input.bytes, 1024u);
  EXPECT_EQ(r.output.bytes, 2u * 8u + 1u);
}

}  // namespace
}  // namespace univsa::hw
