#include "univsa/hw/event_sim.h"

#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"

namespace univsa::hw {
namespace {

EventSimConfig isolet_config(std::size_t fifo_depth = 8) {
  EventSimConfig c;
  c.cycles = stage_cycles(data::find_benchmark("ISOLET").config);
  c.overhead = 1.0;
  c.input_fifo_depth = fifo_depth;
  return c;
}

TEST(EventSimTest, SparseArrivalsSeeFullPipelineLatency) {
  const EventSimConfig c = isolet_config();
  const std::size_t total = c.cycles.total();
  // Arrivals far apart: every sample runs through an empty pipeline.
  const EventSimResult r = simulate_periodic(c, 5, total * 3);
  EXPECT_EQ(r.dropped, 0u);
  for (const auto& s : r.samples) {
    EXPECT_EQ(s.latency(), total);
  }
  EXPECT_DOUBLE_EQ(r.mean_latency_cycles, static_cast<double>(total));
}

TEST(EventSimTest, BackToBackMatchesAnalyticScheduler) {
  const EventSimConfig c = isolet_config(64);
  const std::size_t count = 8;
  const EventSimResult ev = simulate_periodic(c, count, 0);
  const StreamSchedule an = schedule_stream(c.cycles, count);
  ASSERT_EQ(ev.dropped, 0u);
  for (std::size_t k = 0; k < count; ++k) {
    EXPECT_EQ(ev.samples[k].completion(),
              an.samples[k].stages.back().end)
        << "sample " << k;
  }
  EXPECT_EQ(ev.makespan, an.makespan);
}

TEST(EventSimTest, SteadyStateIntervalIsBottleneckStage) {
  const EventSimConfig c = isolet_config(64);
  const EventSimResult r = simulate_periodic(c, 10, 0);
  const auto& s8 = r.samples[9];
  const auto& s7 = r.samples[8];
  EXPECT_EQ(s8.completion() - s7.completion(), c.cycles.interval());
}

TEST(EventSimTest, ArrivalsAtServiceRateAreAllAccepted) {
  const EventSimConfig c = isolet_config(2);
  const EventSimResult r =
      simulate_periodic(c, 20, c.cycles.interval() + 1);
  EXPECT_EQ(r.dropped, 0u);
  // Latency stays bounded (no queue growth).
  EXPECT_LT(r.mean_latency_cycles,
            static_cast<double>(c.cycles.total() +
                                3 * c.cycles.interval()));
}

TEST(EventSimTest, OverdrivenInputDropsAtSmallFifo) {
  const EventSimConfig c = isolet_config(1);
  // Arrivals 4x faster than the pipeline can serve.
  const EventSimResult r =
      simulate_periodic(c, 40, c.cycles.interval() / 4);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_EQ(r.accepted + r.dropped, 40u);
  // Accepted goodput cannot exceed the BiConv bound (with slack for the
  // pipe fill at the start of the window).
  const double bound =
      static_cast<double>(r.makespan) /
      static_cast<double>(c.cycles.interval());
  EXPECT_LE(static_cast<double>(r.accepted), bound + 2.0);
}

TEST(EventSimTest, DeeperFifoAbsorbsBurstsWithoutDrops) {
  // A burst of 6 simultaneous arrivals: FIFO of 2 drops some, FIFO of 8
  // takes them all (one enters DVP immediately, five wait).
  const std::vector<std::size_t> burst = {0, 0, 0, 0, 0, 0};
  EventSimConfig small = isolet_config(2);
  EventSimConfig big = isolet_config(8);
  const EventSimResult rs = simulate_stream(small, burst);
  const EventSimResult rb = simulate_stream(big, burst);
  EXPECT_GT(rs.dropped, 0u);
  EXPECT_EQ(rb.dropped, 0u);
  EXPECT_LE(rb.max_fifo_occupancy, 8u);
}

TEST(EventSimTest, FifoOccupancyNeverExceedsDepth) {
  const EventSimConfig c = isolet_config(3);
  const EventSimResult r = simulate_periodic(c, 30, 100);
  EXPECT_LE(r.max_fifo_occupancy, 3u);
}

TEST(EventSimTest, StageOrderIsPreservedPerSample) {
  const EventSimConfig c = isolet_config();
  const EventSimResult r = simulate_periodic(c, 6, 2000);
  for (const auto& s : r.samples) {
    if (s.dropped) continue;
    for (std::size_t st = 1; st < kStageCount; ++st) {
      EXPECT_GE(s.stages[st].start, s.stages[st - 1].end);
    }
    EXPECT_GE(s.stages[0].start, s.arrival);
  }
}

TEST(EventSimTest, ValidatesInputs) {
  const EventSimConfig c = isolet_config();
  EXPECT_THROW(simulate_stream(c, {}), std::invalid_argument);
  EXPECT_THROW(simulate_stream(c, {10, 5}), std::invalid_argument);
  EventSimConfig bad = c;
  bad.overhead = 0.5;
  EXPECT_THROW(simulate_periodic(bad, 2, 10), std::invalid_argument);
  EXPECT_THROW(simulate_periodic(c, 0, 10), std::invalid_argument);
}

TEST(EventSimTest, ThroughputHelperUsesAcceptedSamples) {
  const EventSimConfig c = isolet_config(64);
  const EventSimResult r = simulate_periodic(c, 10, 0);
  const double tput = r.achieved_throughput(250.0);
  EXPECT_GT(tput, 0.0);
  // Bounded by the analytic streaming throughput (plus fill slack).
  const double bound = 250.0e6 / static_cast<double>(c.cycles.interval());
  EXPECT_LT(tput, bound * 1.01);
}

}  // namespace
}  // namespace univsa::hw
