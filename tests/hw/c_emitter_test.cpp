// Tests for the C firmware emitter — including a fully executable
// cross-check: the emitted C is compiled with the host compiler and its
// predictions compared bit-exactly against the vsa::Model.
#include "univsa/hw/c_emitter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace univsa::hw {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 5;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 6;
  c.Theta = 2;
  return c;
}

vsa::Model small_model(std::uint64_t seed = 13) {
  Rng rng(seed);
  return vsa::Model::random(small_config(), rng);
}

TEST(CEmitterTest, HeaderDeclaresApiAndGeometry) {
  const vsa::Model m = small_model();
  const CEmitter emitter(m);
  const std::string h = emitter.header();
  EXPECT_NE(h.find("#define univsa_N 20"), std::string::npos);
  EXPECT_NE(h.find("#define univsa_CLASSES 3"), std::string::npos);
  EXPECT_NE(h.find("int univsa_predict(const uint16_t *values);"),
            std::string::npos);
}

TEST(CEmitterTest, SourceContainsAllTables) {
  const vsa::Model m = small_model();
  const CEmitter emitter(m);
  const std::string src = emitter.source();
  for (const char* table :
       {"univsa_mask", "univsa_vh", "univsa_vl", "univsa_kern",
        "univsa_f", "univsa_c"}) {
    EXPECT_NE(src.find(table), std::string::npos) << table;
  }
}

TEST(CEmitterTest, PrefixIsConfigurable) {
  const vsa::Model m = small_model();
  CEmitterOptions opts;
  opts.prefix = "chb_detector";
  const CEmitter emitter(m, opts);
  EXPECT_NE(emitter.header().find("int chb_detector_predict"),
            std::string::npos);
  EXPECT_EQ(emitter.source().find("univsa_"), std::string::npos);
}

class CEmitterExecutionTest : public ::testing::TestWithParam<int> {};

TEST_P(CEmitterExecutionTest, CompiledCMatchesModelBitExactly) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const vsa::Model m = vsa::Model::random(small_config(), rng);
  // Per-seed prefix: the parameterized instances run concurrently under
  // ctest and must not share generated file names.
  const std::string tag = "cemit" + std::to_string(seed);
  CEmitterOptions opts;
  opts.prefix = tag;
  const CEmitter emitter(m, opts);

  const std::string dir = ::testing::TempDir();
  emitter.write_files(dir, /*with_main=*/true);

  // Compile the emitted translation units.
  const std::string exe = dir + "/" + tag + "_demo";
  const std::string cmd = "cc -std=c99 -O1 -I" + dir + " " + dir + "/" +
                          tag + "_model.c " + dir + "/" + tag +
                          "_main.c -o " + exe + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string compiler_output;
  char buf[256];
  while (fgets(buf, sizeof buf, pipe)) compiler_output += buf;
  const int rc = pclose(pipe);
  ASSERT_EQ(rc, 0) << "compiler said:\n" << compiler_output;

  // Drive it with random samples and compare labels AND scores.
  const vsa::ModelConfig& c = m.config();
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::uint16_t> values(c.features());
    std::ostringstream run;
    run << exe;
    for (auto& v : values) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
      run << ' ' << v;
    }
    FILE* out = popen(run.str().c_str(), "r");
    ASSERT_NE(out, nullptr);
    std::string output;
    while (fgets(buf, sizeof buf, out)) output += buf;
    ASSERT_EQ(pclose(out), 0);

    const vsa::Prediction expected = m.predict(values);
    std::istringstream is(output);
    std::string word;
    int label = -1;
    is >> word >> label;
    ASSERT_EQ(word, "label");
    EXPECT_EQ(label, expected.label) << output;
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      std::string score_tag;
      long long score = 0;
      is >> score_tag >> score;
      EXPECT_EQ(score, expected.scores[cls])
          << "class " << cls << " trial " << trial;
    }
  }
  std::remove((dir + "/" + tag + "_model.h").c_str());
  std::remove((dir + "/" + tag + "_model.c").c_str());
  std::remove((dir + "/" + tag + "_main.c").c_str());
  std::remove(exe.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CEmitterExecutionTest,
                         ::testing::Values(21, 22, 23));

TEST(CEmitterTest, WriteFilesWithoutMain) {
  const vsa::Model m = small_model();
  const CEmitter emitter(m);
  const std::string dir = ::testing::TempDir();
  emitter.write_files(dir, false);
  std::ifstream h(dir + "/univsa_model.h");
  std::ifstream c(dir + "/univsa_model.c");
  std::ifstream main_c(dir + "/univsa_main.c");
  EXPECT_TRUE(h.is_open());
  EXPECT_TRUE(c.is_open());
  std::remove((dir + "/univsa_model.h").c_str());
  std::remove((dir + "/univsa_model.c").c_str());
}

TEST(CEmitterTest, RejectsEmptyPrefix) {
  const vsa::Model m = small_model();
  CEmitterOptions opts;
  opts.prefix = "";
  EXPECT_THROW(CEmitter(m, opts), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::hw
