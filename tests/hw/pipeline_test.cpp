#include "univsa/hw/pipeline.h"

#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"

namespace univsa::hw {
namespace {

StageCycles isolet_cycles() {
  return stage_cycles(data::find_benchmark("ISOLET").config);
}

TEST(PipelineTest, StagesOfOneSampleAreSequential) {
  const StreamSchedule s = schedule_stream(isolet_cycles(), 3);
  for (const auto& sample : s.samples) {
    for (std::size_t st = 1; st < kStageCount; ++st) {
      EXPECT_GE(sample.stages[st].start, sample.stages[st - 1].end);
    }
  }
}

TEST(PipelineTest, NoStageProcessesTwoSamplesAtOnce) {
  const StreamSchedule s = schedule_stream(isolet_cycles(), 5);
  for (std::size_t st = 0; st < kStageCount; ++st) {
    for (std::size_t k = 1; k < s.samples.size(); ++k) {
      EXPECT_GE(s.samples[k].stages[st].start,
                s.samples[k - 1].stages[st].end)
          << "stage " << st << " sample " << k;
    }
  }
}

TEST(PipelineTest, SteadyIntervalEqualsSlowestStage) {
  const StageCycles c = isolet_cycles();
  const StreamSchedule s = schedule_stream(c, 6);
  EXPECT_EQ(s.steady_interval(), c.interval());
}

TEST(PipelineTest, OverheadScalesDurations) {
  const StageCycles c = isolet_cycles();
  const StreamSchedule plain = schedule_stream(c, 4);
  const StreamSchedule scaled = schedule_stream(c, 4, 1.5625);
  EXPECT_GT(scaled.makespan, plain.makespan);
  EXPECT_NEAR(static_cast<double>(scaled.steady_interval()),
              1.5625 * static_cast<double>(plain.steady_interval()), 2.0);
}

TEST(PipelineTest, PipeliningBeatsSequentialExecution) {
  // Fig. 5 bottom-right: with streaming inputs the makespan approaches
  // count × BiConv, far below count × total.
  const StageCycles c = isolet_cycles();
  const std::size_t count = 10;
  const StreamSchedule s = schedule_stream(c, count);
  EXPECT_LT(s.makespan, count * c.total());
  EXPECT_LE(s.makespan, c.total() + (count - 1) * c.interval());
}

TEST(PipelineTest, SingleSampleMakespanIsStageSum) {
  const StageCycles c = isolet_cycles();
  const StreamSchedule s = schedule_stream(c, 1);
  EXPECT_EQ(s.makespan, c.total());
}

TEST(PipelineTest, AchievedThroughputApproachesSteadyState) {
  const StageCycles c = isolet_cycles();
  const StreamSchedule s = schedule_stream(c, 100, 1.5625);
  const double achieved = s.achieved_throughput(250.0);
  const double steady =
      250.0e6 / (1.5625 * static_cast<double>(c.interval()));
  EXPECT_GT(achieved, 0.9 * steady);
  EXPECT_LE(achieved, steady * 1.001);
}

TEST(PipelineTest, GanttRendersAllRows) {
  const StreamSchedule s = schedule_stream(isolet_cycles(), 3);
  const std::string g = render_gantt(s, 60);
  // One row per (sample, stage) plus the header line.
  std::size_t lines = 0;
  for (const char ch : g) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + 3u * kStageCount);
  EXPECT_NE(g.find("BiConv"), std::string::npos);
}

TEST(PipelineTest, ValidatesArguments) {
  const StageCycles c = isolet_cycles();
  EXPECT_THROW(schedule_stream(c, 0), std::invalid_argument);
  EXPECT_THROW(schedule_stream(c, 2, 0.5), std::invalid_argument);
  const StreamSchedule one = schedule_stream(c, 1);
  EXPECT_THROW(one.steady_interval(), std::invalid_argument);
  EXPECT_THROW(render_gantt(one, 4), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::hw
