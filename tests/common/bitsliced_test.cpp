#include <gtest/gtest.h>

#include "univsa/common/bitvec.h"

namespace univsa {
namespace {

TEST(BitSlicedAccumulatorTest, MatchesIntegerAccumulatorOnKnownInput) {
  BitSlicedAccumulator sliced(3);
  BipolarAccumulator integer(3);
  const BitVec a = BitVec::from_bipolar(std::vector<int>{1, -1, 1});
  const BitVec b = BitVec::from_bipolar(std::vector<int>{1, 1, -1});
  sliced.add_bound(a, b);
  integer.add_bound(a, b);
  EXPECT_EQ(sliced.sign(), integer.sign());
}

TEST(BitSlicedAccumulatorTest, TieBreaksToPlusOne) {
  BitSlicedAccumulator acc(2);
  acc.add(BitVec::from_bipolar(std::vector<int>{1, -1}));
  acc.add(BitVec::from_bipolar(std::vector<int>{-1, 1}));
  const BitVec s = acc.sign();
  EXPECT_EQ(s.get(0), 1);
  EXPECT_EQ(s.get(1), 1);
}

TEST(BitSlicedAccumulatorTest, EmptyAccumulatorSignsAllPlusOne) {
  BitSlicedAccumulator acc(5);
  EXPECT_EQ(acc.rows(), 0u);
  const BitVec s = acc.sign();  // 2·0 >= 0 everywhere
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(s.get(i), 1);
}

TEST(BitSlicedAccumulatorTest, SizeMismatchThrows) {
  BitSlicedAccumulator acc(4);
  EXPECT_THROW(acc.add(BitVec(5)), std::invalid_argument);
  EXPECT_THROW(acc.add_bound(BitVec(4), BitVec(5)),
               std::invalid_argument);
}

struct SlicedCase {
  std::size_t lanes;
  std::size_t rows;
};

class BitSlicedPropertyTest
    : public ::testing::TestWithParam<SlicedCase> {};

TEST_P(BitSlicedPropertyTest, EquivalentToIntegerAccumulatorBound) {
  const auto [lanes, rows] = GetParam();
  Rng rng(lanes * 1000 + rows);
  BitSlicedAccumulator sliced(lanes);
  BipolarAccumulator integer(lanes);
  for (std::size_t r = 0; r < rows; ++r) {
    const BitVec a = BitVec::random(lanes, rng);
    const BitVec b = BitVec::random(lanes, rng);
    sliced.add_bound(a, b);
    integer.add_bound(a, b);
  }
  EXPECT_EQ(sliced.rows(), rows);
  EXPECT_EQ(sliced.sign(), integer.sign());
}

TEST_P(BitSlicedPropertyTest, EquivalentToIntegerAccumulatorPlain) {
  const auto [lanes, rows] = GetParam();
  Rng rng(lanes * 2000 + rows);
  BitSlicedAccumulator sliced(lanes);
  BipolarAccumulator integer(lanes);
  for (std::size_t r = 0; r < rows; ++r) {
    const BitVec v = BitVec::random(lanes, rng);
    sliced.add(v);
    integer.add(v);
  }
  EXPECT_EQ(sliced.sign(), integer.sign());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BitSlicedPropertyTest,
    ::testing::Values(SlicedCase{1, 1}, SlicedCase{1, 7},
                      SlicedCase{63, 3}, SlicedCase{64, 5},
                      SlicedCase{65, 9}, SlicedCase{128, 2},
                      SlicedCase{100, 95},     // EEGMMI-like O
                      SlicedCase{1024, 95},    // full encode shape
                      SlicedCase{1472, 16},    // CHB shape
                      SlicedCase{640, 151}));  // worst-case rows

TEST(BitSlicedAccumulatorTest, CounterGrowsPastPowerOfTwoRows) {
  // 2^k row counts force carry-outs into fresh planes.
  Rng rng(9);
  BitSlicedAccumulator sliced(10);
  BipolarAccumulator integer(10);
  const BitVec ones =
      BitVec::from_bipolar(std::vector<int>(10, 1));
  for (std::size_t r = 0; r < 17; ++r) {  // crosses 1, 2, 4, 8, 16
    sliced.add(ones);
    integer.add(ones);
    EXPECT_EQ(sliced.sign(), integer.sign()) << "after row " << r;
  }
}

}  // namespace
}  // namespace univsa
