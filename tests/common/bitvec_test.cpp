#include "univsa/common/bitvec.h"

#include <gtest/gtest.h>

#include <vector>

namespace univsa {
namespace {

long long naive_dot(const std::vector<int>& a, const std::vector<int>& b) {
  long long s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

TEST(BitVecTest, DefaultIsAllMinusOne) {
  BitVec v(10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(v.get(i), -1);
}

TEST(BitVecTest, SetGetRoundtrip) {
  BitVec v(130);  // spans three words
  v.set(0, 1);
  v.set(64, 1);
  v.set(129, 1);
  EXPECT_EQ(v.get(0), 1);
  EXPECT_EQ(v.get(1), -1);
  EXPECT_EQ(v.get(64), 1);
  EXPECT_EQ(v.get(129), 1);
  v.set(64, -1);
  EXPECT_EQ(v.get(64), -1);
}

TEST(BitVecTest, FromBipolarRoundtrip) {
  const std::vector<int> lanes = {1, -1, -1, 1, 1, -1, 1};
  const BitVec v = BitVec::from_bipolar(lanes);
  EXPECT_EQ(v.to_bipolar(), lanes);
}

TEST(BitVecTest, FromBipolarRejectsNonBipolar) {
  const std::vector<int> lanes = {1, 0, -1};
  EXPECT_THROW(BitVec::from_bipolar(lanes), std::invalid_argument);
}

TEST(BitVecTest, FromSignsUsesPaperTiebreak) {
  const std::vector<float> values = {0.0f, -0.0f, 1.5f, -2.0f};
  const BitVec v = BitVec::from_signs(values);
  EXPECT_EQ(v.get(0), 1);  // sgn(0) = +1
  EXPECT_EQ(v.get(1), 1);  // -0.0f >= 0
  EXPECT_EQ(v.get(2), 1);
  EXPECT_EQ(v.get(3), -1);
}

TEST(BitVecTest, IndexOutOfRangeThrows) {
  BitVec v(5);
  EXPECT_THROW(v.get(5), std::invalid_argument);
  EXPECT_THROW(v.set(5, 1), std::invalid_argument);
}

TEST(BitVecTest, DotMatchesNaiveOnKnownVectors) {
  const std::vector<int> a = {1, 1, -1, -1, 1};
  const std::vector<int> b = {1, -1, -1, 1, 1};
  const BitVec va = BitVec::from_bipolar(a);
  const BitVec vb = BitVec::from_bipolar(b);
  EXPECT_EQ(va.dot(vb), naive_dot(a, b));
  EXPECT_EQ(va.dot(va), 5);
}

TEST(BitVecTest, DotSizeMismatchThrows) {
  BitVec a(4);
  BitVec b(5);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
}

TEST(BitVecTest, HammingAndDotAreEquivalent) {
  // Eq. 2 discussion: dot = n - 2·hamming.
  Rng rng(5);
  const BitVec a = BitVec::random(257, rng);
  const BitVec b = BitVec::random(257, rng);
  EXPECT_EQ(a.dot(b),
            257 - 2 * static_cast<long long>(a.hamming(b)));
}

TEST(BitVecTest, MaskedDotIgnoresMaskedLanes) {
  const BitVec a = BitVec::from_bipolar(std::vector<int>{1, 1, -1, -1});
  const BitVec b = BitVec::from_bipolar(std::vector<int>{1, -1, -1, -1});
  // Mask keeps lanes 0 and 2 only: contributions +1 (match) +1 (match).
  BitVec mask(4);
  mask.set(0, 1);
  mask.set(2, 1);
  EXPECT_EQ(a.masked_dot(b, mask), 2);
  // Full mask equals plain dot.
  BitVec full(4);
  for (std::size_t i = 0; i < 4; ++i) full.set(i, 1);
  EXPECT_EQ(a.masked_dot(b, full), a.dot(b));
  // Empty mask contributes nothing.
  EXPECT_EQ(a.masked_dot(b, BitVec(4)), 0);
}

TEST(BitVecTest, BindIsElementwiseProduct) {
  Rng rng(6);
  const BitVec a = BitVec::random(100, rng);
  const BitVec b = BitVec::random(100, rng);
  const BitVec c = a.bind(b);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(c.get(i), a.get(i) * b.get(i));
  }
}

TEST(BitVecTest, BindWithSelfIsIdentityVector) {
  Rng rng(8);
  const BitVec a = BitVec::random(70, rng);
  const BitVec c = a.bind(a);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_EQ(c.get(i), 1);
}

TEST(BitVecTest, NegateFlipsEveryLane) {
  Rng rng(9);
  const BitVec a = BitVec::random(65, rng);
  const BitVec n = a.negate();
  for (std::size_t i = 0; i < 65; ++i) EXPECT_EQ(n.get(i), -a.get(i));
  EXPECT_EQ(a.dot(n), -65);
}

TEST(BitVecTest, PopcountCountsPositiveLanes) {
  BitVec v(130);
  v.set(0, 1);
  v.set(100, 1);
  v.set(129, 1);
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVecTest, EqualityAndInequality) {
  Rng rng(10);
  const BitVec a = BitVec::random(90, rng);
  BitVec b = a;
  EXPECT_EQ(a, b);
  b.set(45, -b.get(45));
  EXPECT_NE(a, b);
  EXPECT_NE(a, BitVec(91));
}

class BitVecPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecPropertyTest, DotMatchesNaiveOnRandomVectors) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 1);
  for (int iter = 0; iter < 10; ++iter) {
    const BitVec a = BitVec::random(n, rng);
    const BitVec b = BitVec::random(n, rng);
    EXPECT_EQ(a.dot(b), naive_dot(a.to_bipolar(), b.to_bipolar()));
  }
}

TEST_P(BitVecPropertyTest, MaskedDotMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(n * 37 + 2);
  for (int iter = 0; iter < 10; ++iter) {
    const BitVec a = BitVec::random(n, rng);
    const BitVec b = BitVec::random(n, rng);
    const BitVec mask = BitVec::random(n, rng);
    long long expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask.get(i) == 1) expected += a.get(i) * b.get(i);
    }
    EXPECT_EQ(a.masked_dot(b, mask), expected);
  }
}

TEST_P(BitVecPropertyTest, HammingMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(n * 41 + 3);
  const BitVec a = BitVec::random(n, rng);
  const BitVec b = BitVec::random(n, rng);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.get(i) != b.get(i)) ++expected;
  }
  EXPECT_EQ(a.hamming(b), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecPropertyTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           1000, 1472));

TEST(BipolarAccumulatorTest, AddAndSign) {
  BipolarAccumulator acc(3);
  acc.add(BitVec::from_bipolar(std::vector<int>{1, -1, 1}));
  acc.add(BitVec::from_bipolar(std::vector<int>{1, -1, -1}));
  acc.add(BitVec::from_bipolar(std::vector<int>{-1, -1, 1}));
  const BitVec s = acc.sign();
  EXPECT_EQ(s.get(0), 1);
  EXPECT_EQ(s.get(1), -1);
  EXPECT_EQ(s.get(2), 1);
}

TEST(BipolarAccumulatorTest, SignOfZeroIsPlusOne) {
  BipolarAccumulator acc(2);
  acc.add(BitVec::from_bipolar(std::vector<int>{1, -1}));
  acc.add(BitVec::from_bipolar(std::vector<int>{-1, 1}));
  const BitVec s = acc.sign();
  EXPECT_EQ(s.get(0), 1);  // sum 0 -> +1 (paper tiebreak)
  EXPECT_EQ(s.get(1), 1);
}

TEST(BipolarAccumulatorTest, AddBoundEqualsBindThenAdd) {
  Rng rng(12);
  const std::size_t n = 200;
  const BitVec a = BitVec::random(n, rng);
  const BitVec b = BitVec::random(n, rng);
  BipolarAccumulator acc1(n);
  acc1.add_bound(a, b);
  BipolarAccumulator acc2(n);
  acc2.add(a.bind(b));
  EXPECT_EQ(std::vector<long long>(acc1.sums().begin(), acc1.sums().end()),
            std::vector<long long>(acc2.sums().begin(), acc2.sums().end()));
}

TEST(BipolarAccumulatorTest, AddMaskedSkipsLanes) {
  BipolarAccumulator acc(3);
  BitVec mask(3);
  mask.set(1, 1);
  acc.add_masked(BitVec::from_bipolar(std::vector<int>{1, 1, 1}), mask);
  EXPECT_EQ(acc.sums()[0], 0);
  EXPECT_EQ(acc.sums()[1], 1);
  EXPECT_EQ(acc.sums()[2], 0);
}

TEST(BipolarAccumulatorTest, SizeMismatchThrows) {
  BipolarAccumulator acc(3);
  EXPECT_THROW(acc.add(BitVec(4)), std::invalid_argument);
}

}  // namespace
}  // namespace univsa
