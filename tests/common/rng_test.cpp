#include "univsa/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace univsa {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedProducesNonDegenerateState) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(r.next_u64());
  EXPECT_GT(values.size(), 30u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformRangeRejectsInverted) {
  Rng r(7);
  EXPECT_THROW(r.uniform(5.0, -3.0), std::invalid_argument);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng r(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    ++counts[r.uniform_index(7)];
  }
  for (const auto c : counts) {
    EXPECT_GT(c, 700);  // roughly uniform: expectation 1000
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng r(3);
  EXPECT_THROW(r.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng r(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalScaled) {
  Rng r(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, NormalRejectsNegativeStddev) {
  Rng r(13);
  EXPECT_THROW(r.normal(0.0, -1.0), std::invalid_argument);
}

TEST(RngTest, SignIsBalanced) {
  Rng r(17);
  int pos = 0;
  for (int i = 0; i < 10000; ++i) {
    const int s = r.sign();
    ASSERT_TRUE(s == 1 || s == -1);
    if (s == 1) ++pos;
  }
  EXPECT_GT(pos, 4700);
  EXPECT_LT(pos, 5300);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.bernoulli(0.2)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
}

TEST(RngTest, BernoulliRejectsBadProbability) {
  Rng r(19);
  EXPECT_THROW(r.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(r.bernoulli(1.1), std::invalid_argument);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(23);
  Rng b(23);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng r(29);
  const auto p = r.permutation(100);
  ASSERT_EQ(p.size(), 100u);
  std::vector<std::size_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng r(31);
  EXPECT_TRUE(r.permutation(0).empty());
  const auto p = r.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(RngTest, JumpIsDeterministicAndMovesTheStream) {
  Rng a(41);
  Rng b(41);
  a.jump();
  b.jump();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  Rng plain(41);
  Rng jumped(41);
  jumped.jump();
  // 2^128 steps ahead: the next draws must not coincide.
  std::size_t equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (plain.next_u64() == jumped.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0u);
}

TEST(RngTest, StreamDependsOnlyOnSeedAndId) {
  for (const std::uint64_t id : {0ull, 1ull, 7ull, 63ull, 64ull, 1000ull}) {
    Rng a = Rng::stream(17, id);
    Rng b = Rng::stream(17, id);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DistinctStreamIdsDiverge) {
  Rng a = Rng::stream(17, 1);
  Rng b = Rng::stream(17, 2);
  std::size_t equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2u);
}

TEST(RngTest, PermutationShuffles) {
  Rng r(37);
  const auto p = r.permutation(64);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 12u);  // expected ~1 fixed point
}

}  // namespace
}  // namespace univsa
