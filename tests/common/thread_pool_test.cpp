#include "univsa/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace univsa {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0u);  // caller does all the work
  std::size_t sum = 0;
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> total{0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      local += static_cast<long long>(values[i]);
    }
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, PropagatesExceptionFromWorkerChunk) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin > 0) {
                            throw std::runtime_error("worker boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, PropagatesExceptionFromCallerChunk) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) {
                            throw std::runtime_error("caller boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, GlobalHelperRunsSmallSizesSerially) {
  // Not observable directly, but must still cover every index.
  std::vector<int> hits(100, 0);
  parallel_for(100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, GlobalHelperLargeRange) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(5000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SetGlobalPoolThreadsResizesAndStillCovers) {
  set_global_pool_threads(3);
  std::vector<std::atomic<int>> hits(1000);
  global_pool().parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  set_global_pool_threads(0);  // restore hardware default
}

TEST(ThreadPoolTest, NestedParallelForCompletesAndCoversAll) {
  // A nested parallel_for from inside a pool chunk must not deadlock:
  // sub-chunks go into the shared queue and joining threads help drain
  // it, so nesting composes (the co-design search relies on this — GA
  // candidate lanes nest training parallel_fors).
  set_global_pool_threads(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  global_pool().parallel_for(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      outer.fetch_add(1);
      global_pool().parallel_for(
          100, [&](std::size_t ib, std::size_t ie) {
            inner.fetch_add(static_cast<int>(ie - ib));
          });
    }
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 800);
  set_global_pool_threads(0);
}

TEST(ThreadPoolTest, TriplyNestedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4 * 4 * 64);
  pool.parallel_for(4, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      pool.parallel_for(4, [&, o](std::size_t mb, std::size_t me) {
        for (std::size_t m = mb; m < me; ++m) {
          pool.parallel_for(64, [&, o, m](std::size_t ib, std::size_t ie) {
            for (std::size_t i = ib; i < ie; ++i) {
              hits[(o * 4 + m) * 64 + i].fetch_add(1);
            }
          });
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesToOuterCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            pool.parallel_for(
                                32, [](std::size_t ib, std::size_t) {
                                  if (ib > 0) {
                                    throw std::runtime_error("inner boom");
                                  }
                                });
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable after the unwound join.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, UnitChunkGrainDynamicallyBalances) {
  // max_chunk = 1 turns parallel_for into a dynamic work queue: every
  // index is its own task, so stragglers can't pin a static range.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(37);
  pool.parallel_for(
      37,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(end, begin + 1);
        hits[begin].fetch_add(1);
      },
      /*max_chunk=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentHeterogeneousNestedLanesStress) {
  // Shapes the co-design workload: unit-grain candidate lanes of very
  // different costs, each nesting an inner parallel_for, repeated across
  // rounds. Every index on both levels must be covered exactly once.
  ThreadPool pool(8);
  for (int round = 0; round < 10; ++round) {
    const std::size_t lanes = 13;
    std::vector<std::atomic<std::uint64_t>> sums(lanes);
    pool.parallel_for(
        lanes,
        [&](std::size_t lb, std::size_t le) {
          for (std::size_t lane = lb; lane < le; ++lane) {
            const std::size_t work = 64 + 512 * (lane % 3);
            pool.parallel_for(work, [&, lane](std::size_t b, std::size_t e) {
              std::uint64_t local = 0;
              for (std::size_t i = b; i < e; ++i) local += i;
              sums[lane].fetch_add(local);
            });
          }
        },
        /*max_chunk=*/1);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::uint64_t work = 64 + 512 * (lane % 3);
      EXPECT_EQ(sums[lane].load(), work * (work - 1) / 2) << lane;
    }
  }
}

}  // namespace
}  // namespace univsa
