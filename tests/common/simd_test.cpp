// Property tests for the runtime-dispatched SIMD kernel layer: every
// compiled-in ISA variant must be bit-exact against the scalar
// reference for every vector-width remainder (word counts 1..256 cover
// every tail shape of the 256- and 512-bit paths several times over),
// the dispatch rules must honor UNIVSA_FORCE_ISA, and the registry must
// surface one packed-<isa> backend per available ISA.
#include "univsa/common/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/runtime/registry.h"

namespace univsa::simd {
namespace {

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next_u64();
  return words;
}

TEST(SimdDispatch, ScalarAlwaysCompiledAndAvailable) {
  const auto isas = compiled_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  EXPECT_TRUE(isa_available(Isa::kScalar));
  EXPECT_EQ(kernels_for(Isa::kScalar).isa, Isa::kScalar);
}

TEST(SimdDispatch, ParseIsaRoundTrips) {
  for (const Isa isa :
       {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    const auto parsed = parse_isa(to_string(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(parse_isa("").has_value());
  EXPECT_FALSE(parse_isa("sse9").has_value());
  EXPECT_FALSE(parse_isa("AVX2").has_value());  // case-sensitive
}

TEST(SimdDispatch, EveryTableReportsItsOwnIsa) {
  for (const Isa isa : compiled_isas()) {
    if (!isa_available(isa)) continue;
    EXPECT_EQ(kernels_for(isa).isa, isa);
  }
}

// The active table must follow UNIVSA_FORCE_ISA when it names an
// available ISA and fall back to best_isa() otherwise. The CI dispatch
// matrix runs this whole suite under UNIVSA_FORCE_ISA=scalar and =avx2,
// so both branches are exercised on real runners.
TEST(SimdDispatch, ActiveIsaHonorsForceIsaEnv) {
  const char* env = std::getenv("UNIVSA_FORCE_ISA");
  if (env == nullptr || *env == '\0') {
    EXPECT_FALSE(forced_isa().has_value());
    EXPECT_EQ(active_isa(), best_isa());
    return;
  }
  const auto wanted = parse_isa(env);
  EXPECT_EQ(forced_isa(), wanted);
  if (wanted.has_value() && isa_available(*wanted)) {
    EXPECT_EQ(active_isa(), *wanted);
  } else {
    EXPECT_EQ(active_isa(), best_isa());
  }
}

TEST(SimdDispatch, RegistryListsOnePackedBackendPerAvailableIsa) {
  for (const Isa isa : compiled_isas()) {
    const std::string name = std::string("packed-") + to_string(isa);
    EXPECT_EQ(runtime::has_backend(name), isa_available(isa)) << name;
  }
  // The scalar table is always available, so packed-scalar always exists.
  EXPECT_TRUE(runtime::has_backend("packed-scalar"));
}

// --- Bit-exactness sweeps ------------------------------------------------

class SimdKernelTest : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!isa_available(GetParam())) {
      GTEST_SKIP() << to_string(GetParam())
                   << " not available on this build/CPU";
    }
  }
};

TEST_P(SimdKernelTest, ReductionsMatchScalarForEveryWordCount) {
  const Kernels& k = kernels_for(GetParam());
  const Kernels& s = kernels_for(Isa::kScalar);
  Rng rng(0x51D0u);
  for (std::size_t n = 0; n <= 256; ++n) {
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    const auto m = random_words(rng, n);
    EXPECT_EQ(k.bulk_popcount(a.data(), n), s.bulk_popcount(a.data(), n))
        << "bulk n=" << n;
    EXPECT_EQ(k.xor_popcount(a.data(), b.data(), n),
              s.xor_popcount(a.data(), b.data(), n))
        << "xor n=" << n;
    EXPECT_EQ(k.xnor_popcount(a.data(), b.data(), n),
              s.xnor_popcount(a.data(), b.data(), n))
        << "xnor n=" << n;
    EXPECT_EQ(k.masked_xnor_popcount(a.data(), b.data(), m.data(), n),
              s.masked_xnor_popcount(a.data(), b.data(), m.data(), n))
        << "masked n=" << n;
  }
}

TEST_P(SimdKernelTest, ReductionsMatchScalarOnAdversarialPatterns) {
  const Kernels& k = kernels_for(GetParam());
  const Kernels& s = kernels_for(Isa::kScalar);
  for (const std::uint64_t fill :
       {0ULL, ~0ULL, 0xAAAAAAAAAAAAAAAAULL, 0x8000000000000001ULL}) {
    for (const std::size_t n : {1, 7, 8, 9, 63, 64, 65, 129, 1000}) {
      const std::vector<std::uint64_t> a(n, fill);
      const std::vector<std::uint64_t> b(n, ~fill);
      const std::vector<std::uint64_t> m(n, 0x0123456789ABCDEFULL);
      EXPECT_EQ(k.bulk_popcount(a.data(), n), s.bulk_popcount(a.data(), n));
      EXPECT_EQ(k.xor_popcount(a.data(), b.data(), n),
                s.xor_popcount(a.data(), b.data(), n));
      EXPECT_EQ(k.xnor_popcount(a.data(), b.data(), n),
                s.xnor_popcount(a.data(), b.data(), n));
      EXPECT_EQ(k.masked_xnor_popcount(a.data(), b.data(), m.data(), n),
                s.masked_xnor_popcount(a.data(), b.data(), m.data(), n));
    }
  }
}

TEST_P(SimdKernelTest, SweepMatchesScalarForEveryKernelCountShape) {
  const Kernels& k = kernels_for(GetParam());
  const Kernels& s = kernels_for(Isa::kScalar);
  Rng rng(0xB1C0u);
  // words × k_count covers the paper configs (words_per_patch is 1-3,
  // O is 8-64) plus every vector-lane remainder of the sweep's
  // across-kernel blocking.
  for (const std::size_t words : {1, 2, 3, 5, 10}) {
    for (std::size_t k_count = 1; k_count <= 40; ++k_count) {
      const auto patch = random_words(rng, words);
      const auto valid = random_words(rng, words);
      const auto kernels_t = random_words(rng, words * k_count);
      std::vector<std::uint32_t> got(k_count, 0xDEADBEEFu);
      std::vector<std::uint32_t> want(k_count, 0u);
      k.masked_xnor_popcount_sweep(patch.data(), valid.data(),
                                   kernels_t.data(), words, k_count,
                                   got.data());
      s.masked_xnor_popcount_sweep(patch.data(), valid.data(),
                                   kernels_t.data(), words, k_count,
                                   want.data());
      EXPECT_EQ(got, want) << "words=" << words << " k_count=" << k_count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompiledIsas, SimdKernelTest,
    ::testing::ValuesIn(compiled_isas()),
    [](const ::testing::TestParamInfo<Isa>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace univsa::simd
