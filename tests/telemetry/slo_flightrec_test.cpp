// Flight-recorder ring semantics and SLO burn-rate evaluation.
//
// Both modules share process-global state (the flight ring, the metric
// registry), so tests clear the ring first and use test-unique metric
// names. Suites are named Telemetry* so the TSan CI job's -R regex
// picks them up.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "univsa/telemetry/flight_recorder.h"
#include "univsa/telemetry/metrics.h"
#include "univsa/telemetry/slo.h"

namespace univsa::telemetry {
namespace {

std::string tmp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t breach_events() {
  std::size_t n = 0;
  for (const FlightEvent& e : flightrec_recent()) {
    if (e.type == FlightEventType::kSloBreach) ++n;
  }
  return n;
}

TEST(TelemetryFlightRecorder, RecordAndRecent) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  flightrec_clear();
  flightrec_record(FlightEventType::kHotSwap, "tenant-a", 2, 1);
  flightrec_record(FlightEventType::kShed, "tenant-b", 31, 32);
  const std::vector<FlightEvent> events = flightrec_recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, FlightEventType::kHotSwap);
  EXPECT_STREQ(events[0].subject.data(), "tenant-a");
  EXPECT_EQ(events[0].a, 2u);
  EXPECT_EQ(events[0].b, 1u);
  EXPECT_EQ(events[1].type, FlightEventType::kShed);
  EXPECT_STREQ(events[1].subject.data(), "tenant-b");
  EXPECT_EQ(flightrec_recorded(), 2u);
  EXPECT_GT(events[1].time_ns, 0u);
}

TEST(TelemetryFlightRecorder, EventTypeNamesAreStable) {
  EXPECT_STREQ(to_string(FlightEventType::kShed), "shed");
  EXPECT_STREQ(to_string(FlightEventType::kHealthTransition),
               "health_transition");
  EXPECT_STREQ(to_string(FlightEventType::kFaultInjected),
               "fault_injected");
  EXPECT_STREQ(to_string(FlightEventType::kDriftLatched), "drift_latched");
  EXPECT_STREQ(to_string(FlightEventType::kSloBreach), "slo_breach");
}

TEST(TelemetryFlightRecorder, WraparoundKeepsMostRecent) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  flightrec_clear();
  const std::size_t total = kFlightRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    flightrec_record(FlightEventType::kShed, "wrap", i);
  }
  EXPECT_EQ(flightrec_recorded(), total);
  const std::vector<FlightEvent> events = flightrec_recent();
  // Single writer, no torn slots: exactly the newest capacity's worth,
  // oldest first.
  ASSERT_EQ(events.size(), kFlightRingCapacity);
  EXPECT_EQ(events.front().a, total - kFlightRingCapacity);
  EXPECT_EQ(events.back().a, total - 1);
}

TEST(TelemetryFlightRecorder, SubjectIsTruncatedAndTerminated) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  flightrec_clear();
  const std::string longer(100, 'x');
  flightrec_record(FlightEventType::kEviction, longer.c_str());
  const std::vector<FlightEvent> events = flightrec_recent();
  ASSERT_EQ(events.size(), 1u);
  const FlightEvent& e = events[0];
  EXPECT_EQ(e.subject.back(), '\0');
  EXPECT_EQ(std::string(e.subject.data()),
            std::string(e.subject.size() - 1, 'x'));
}

TEST(TelemetryFlightRecorder, DumpWritesSelfContainedJson) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  flightrec_clear();
  flightrec_record(FlightEventType::kHotSwap, "tenant-a", 3, 2);
  flightrec_record(FlightEventType::kHealthTransition, "degraded", 0, 1);
  const std::string path = tmp_path("univsa_flightrec_test.json");
  ASSERT_TRUE(flightrec_dump(path));
  const std::string json = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"kind\": \"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("hot_swap"), std::string::npos);
  EXPECT_NE(json.find("health_transition"), std::string::npos);
  EXPECT_NE(json.find("tenant-a"), std::string::npos);
  // The dump records itself, so the file ends with a dump marker.
  EXPECT_NE(json.find("\"dump\""), std::string::npos);
}

TEST(TelemetrySlo, AvailabilityBreachFiresOnceOnEdge) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  flightrec_clear();
  Counter& good = counter("test.slo.avail_good");
  Counter& bad = counter("test.slo.avail_bad");
  SloObjective o;
  o.name = "test_availability";
  o.good_counter = "test.slo.avail_good";
  o.bad_counter = "test.slo.avail_bad";
  o.target = 0.9;  // error budget 0.1 -> burn = error rate * 10
  SloEngine::Options opt;
  opt.fast_window = 2;
  opt.slow_window = 4;
  opt.fast_burn_threshold = 4.0;
  opt.slow_burn_threshold = 2.0;
  SloEngine engine({o}, opt);

  // Healthy traffic: compliance 1, burn 0.
  good.add(100);
  std::vector<SloStatus> s = engine.evaluate();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_FALSE(s[0].breached);
  good.add(100);
  s = engine.evaluate();
  EXPECT_FALSE(s[0].breached);
  EXPECT_DOUBLE_EQ(s[0].fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s[0].compliance, 1.0);
  EXPECT_DOUBLE_EQ(s[0].budget_remaining, 1.0);
  EXPECT_EQ(breach_events(), 0u);

  // Error storm: both windows burn past their thresholds.
  bad.add(200);
  s = engine.evaluate();
  bad.add(200);
  s = engine.evaluate();
  EXPECT_TRUE(s[0].breached);
  EXPECT_GT(s[0].fast_burn, opt.fast_burn_threshold);
  EXPECT_GT(s[0].slow_burn, opt.slow_burn_threshold);
  EXPECT_LT(s[0].compliance, 1.0);
  // Exactly one breach edge landed in the flight recorder...
  EXPECT_EQ(breach_events(), 1u);
  // ...and staying breached does not re-fire the edge.
  bad.add(50);
  s = engine.evaluate();
  EXPECT_TRUE(s[0].breached);
  EXPECT_EQ(breach_events(), 1u);
}

TEST(TelemetrySlo, FastBlipAloneDoesNotBreach) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Counter& good = counter("test.slo.blip_good");
  Counter& bad = counter("test.slo.blip_bad");
  SloObjective o;
  o.name = "test_blip";
  o.good_counter = "test.slo.blip_good";
  o.bad_counter = "test.slo.blip_bad";
  o.target = 0.9;
  SloEngine::Options opt;
  opt.fast_window = 1;
  opt.slow_window = 8;
  opt.fast_burn_threshold = 2.0;
  opt.slow_burn_threshold = 3.0;
  SloEngine engine({o}, opt);
  // A long healthy history, then one bad tick: the fast window burns
  // but the slow window stays diluted — the multi-window rule holds.
  for (int i = 0; i < 8; ++i) {
    good.add(100);
    (void)engine.evaluate();
  }
  bad.add(30);
  const std::vector<SloStatus> s = engine.evaluate();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_GT(s[0].fast_burn, opt.fast_burn_threshold);
  EXPECT_LE(s[0].slow_burn, opt.slow_burn_threshold);
  EXPECT_FALSE(s[0].breached);
}

TEST(TelemetrySlo, LatencyObjectiveCountsBucketsAtOrBelowTarget) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  LatencyHistogram& h = histogram("test.slo.lat_ns");
  SloObjective o;
  o.name = "test_latency";
  o.histogram = "test.slo.lat_ns";
  o.target_ns = 1000;
  o.target = 0.5;
  SloEngine engine({o});
  for (int i = 0; i < 10; ++i) h.record(10);          // good
  for (int i = 0; i < 5; ++i) h.record(10'000'000);   // bad
  const std::vector<SloStatus> s = engine.evaluate();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].good, 10u);
  EXPECT_EQ(s[0].bad, 5u);
  EXPECT_NEAR(s[0].compliance, 10.0 / 15.0, 1e-9);
}

TEST(TelemetrySlo, DefaultServerSlosResolve) {
  SloEngine engine(default_server_slos());
  ASSERT_EQ(engine.objectives().size(), 2u);
  EXPECT_EQ(engine.objectives()[0].name, "serving_latency_p99");
  EXPECT_EQ(engine.objectives()[1].name, "serving_availability");
  const std::vector<SloStatus> s = engine.evaluate();
  ASSERT_EQ(s.size(), 2u);
  for (const SloStatus& st : s) EXPECT_FALSE(st.breached);
}

}  // namespace
}  // namespace univsa::telemetry
