// LatencyHistogram bucket math and single-thread recording semantics.
// (Concurrency exactness lives in telemetry/metrics_test.cpp.)
#include "univsa/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace univsa::telemetry {
namespace {

using H = LatencyHistogram;

TEST(HistogramBuckets, SmallValuesAreExact) {
  // Values below 2^kSubBits get one bucket each: no quantization at all.
  for (std::uint64_t v = 0; v < (1u << H::kSubBits); ++v) {
    const std::size_t b = H::bucket_of(v);
    EXPECT_EQ(b, v);
    EXPECT_EQ(H::bucket_floor(b), v);
    EXPECT_EQ(H::bucket_ceil(b), v);
  }
}

TEST(HistogramBuckets, FloorAndCeilBracketEveryValue) {
  const std::uint64_t probes[] = {
      8,      9,      15,     16,    17,    100,   1000,
      1023,   1024,   1025,   4095,  4096,  65535, 1ull << 20,
      (1ull << 20) + 1,        (1ull << 32) - 1,   1ull << 32,
      (1ull << 63) - 1,        1ull << 63,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    const std::size_t b = H::bucket_of(v);
    ASSERT_LT(b, H::kBuckets) << v;
    EXPECT_LE(H::bucket_floor(b), v) << v;
    EXPECT_GE(H::bucket_ceil(b), v) << v;
  }
}

TEST(HistogramBuckets, PowersOfTwoStartFreshBuckets) {
  for (int p = H::kSubBits; p < 64; ++p) {
    const std::uint64_t v = 1ull << p;
    const std::size_t b = H::bucket_of(v);
    EXPECT_EQ(H::bucket_floor(b), v) << "p=" << p;
    EXPECT_NE(b, H::bucket_of(v - 1)) << "p=" << p;
  }
}

TEST(HistogramBuckets, MonotonicAndBounded) {
  // bucket_of never decreases, and relative bucket width stays <= 1/8
  // past the exact range (8 linear sub-buckets per octave).
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; ++v) {
    const std::size_t b = H::bucket_of(v);
    ASSERT_GE(b, prev) << v;
    prev = b;
    if (v >= (1u << H::kSubBits)) {
      const double width = static_cast<double>(H::bucket_ceil(b) -
                                               H::bucket_floor(b) + 1);
      EXPECT_LE(width / static_cast<double>(H::bucket_floor(b)), 0.125 + 1e-9)
          << v;
    }
  }
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            H::kBuckets - 1);
  EXPECT_EQ(H::bucket_ceil(H::kBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramRecord, ExactScalarsAndBucketedPercentiles) {
  H hist;
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  const HistogramSnapshot s = hist.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Percentiles resolve to a bucket upper bound >= the true rank value
  // and within the HDR error bound (<=12.5% bucket width).
  const std::uint64_t p50 = s.percentile(0.50);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 56u);
  EXPECT_EQ(s.percentile(0.0), s.buckets.front().upper);
  EXPECT_EQ(s.percentile(1.0), 100u);  // clamped to observed max
}

TEST(HistogramRecord, EmptyAndReset) {
  H hist;
  EXPECT_EQ(hist.snapshot().count, 0u);
  EXPECT_EQ(hist.snapshot().min, 0u);
  EXPECT_EQ(hist.snapshot().percentile(0.99), 0u);
  hist.record(7);
  hist.record(9);
  hist.reset();
  const HistogramSnapshot s = hist.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_TRUE(s.buckets.empty());
}

TEST(HistogramRecord, ExtremeValues) {
  H hist;
  hist.record(0);
  hist.record(std::numeric_limits<std::uint64_t>::max());
  const HistogramSnapshot s = hist.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(s.buckets.size(), 2u);
  EXPECT_EQ(s.percentile(1.0), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace univsa::telemetry
