// Exporter golden tests: to_prometheus / to_json are pure functions of
// a Snapshot, so a hand-built snapshot pins their output byte-for-byte.
// A second group scrapes the real registry and parse-checks the
// Prometheus invariants (cumulative buckets, _count consistency).
#include "univsa/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace univsa::telemetry {
namespace {

Snapshot golden_snapshot() {
  Snapshot s;
  s.build.git_sha = "abc123def456";
  s.build.compiler = "testcc 1.0";
  s.build.build_type = "Release";
  s.build.flags = "sanitize=off";
  s.build.simd_isa = "avx2";
  s.build.threads = 4;
  s.build.telemetry_compiled_in = true;
  s.counters.emplace_back("server.requests", 42);
  s.gauges.emplace_back("queue_depth", 3.5);
  HistogramSnapshot h;
  h.name = "lat_ns";
  h.count = 3;
  h.min = 2;
  h.max = 4;
  h.sum = 9.0;
  h.buckets.push_back({2, 1});
  h.buckets.push_back({4, 2});
  s.histograms.push_back(h);
  s.spans_pushed = 7;
  return s;
}

TEST(ExporterGolden, PrometheusTextFormat) {
  const std::string expected =
      "# TYPE univsa_build_info gauge\n"
      "univsa_build_info{git_sha=\"abc123def456\",compiler=\"testcc 1.0\","
      "build_type=\"Release\",flags=\"sanitize=off\",simd_isa=\"avx2\","
      "pool_threads=\"4\"} 1\n"
      "# TYPE univsa_server_requests counter\n"
      "univsa_server_requests_total 42\n"
      "# TYPE univsa_queue_depth gauge\n"
      "univsa_queue_depth 3.5\n"
      "# TYPE univsa_lat_ns histogram\n"
      "univsa_lat_ns_bucket{le=\"2\"} 1\n"
      "univsa_lat_ns_bucket{le=\"4\"} 3\n"
      "univsa_lat_ns_bucket{le=\"+Inf\"} 3\n"
      "univsa_lat_ns_sum 9\n"
      "univsa_lat_ns_count 3\n";
  EXPECT_EQ(to_prometheus(golden_snapshot()), expected);
}

TEST(ExporterGolden, JsonFormat) {
  const std::string expected =
      "{\n"
      "  \"git_sha\": \"abc123def456\",\n"
      "  \"compiler\": \"testcc 1.0\",\n"
      "  \"build_type\": \"Release\",\n"
      "  \"build_flags\": \"sanitize=off\",\n"
      "  \"simd_isa\": \"avx2\",\n"
      "  \"pool_threads\": 4,\n"
      "  \"telemetry_compiled_in\": true,\n"
      "  \"counters\": {\"server.requests\": 42},\n"
      "  \"gauges\": {\"queue_depth\": 3.5},\n"
      "  \"histograms\": {\n"
      "    \"lat_ns\": {\"count\": 3, \"sum\": 9, \"min\": 2, \"max\": 4,"
      " \"mean\": 3, \"p50\": 4, \"p90\": 4, \"p95\": 4, \"p99\": 4,"
      " \"buckets\": [[2, 1], [4, 2]]}\n"
      "  },\n"
      "  \"spans_pushed\": 7,\n"
      "  \"spans\": []\n"
      "}\n";
  EXPECT_EQ(to_json(golden_snapshot()), expected);
}

TEST(ExporterGolden, JsonEscapesSpecialCharacters) {
  Snapshot s;
  s.build.git_sha = "a\"b\\c";
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"git_sha\": \"a\\\"b\\\\c\""), std::string::npos);
}

TEST(ExporterGolden, PrometheusEscapesHostileTenantLabels) {
  // Tenant names are arbitrary user strings; telemetry::labeled stores
  // them raw and the exporter must neutralize them at emit time. This
  // tenant carries a quote, a newline and a brace pair — each one a
  // scrape-format injection vector if left unescaped.
  const std::string hostile = "a\"b\n{}";
  Snapshot s;
  s.counters.emplace_back(
      labeled("runtime.server.tenant_completed", "tenant", hostile), 5);
  s.counters.emplace_back(
      labeled("runtime.server.tenant_completed", "tenant", "plain"), 7);
  s.gauges.emplace_back(
      labeled("runtime.adapt.recent_accuracy", "tenant", hostile), 0.75);
  HistogramSnapshot h;
  h.name = labeled("runtime.server.tenant_latency_ns", "tenant", hostile);
  h.count = 2;
  h.min = 2;
  h.max = 4;
  h.sum = 6.0;
  h.buckets.push_back({2, 1});
  h.buckets.push_back({4, 1});
  s.histograms.push_back(h);

  const std::string expected =
      "# TYPE univsa_build_info gauge\n"
      "univsa_build_info{git_sha=\"\",compiler=\"\",build_type=\"\","
      "flags=\"\",simd_isa=\"\",pool_threads=\"0\"} 1\n"
      "# TYPE univsa_runtime_server_tenant_completed counter\n"
      "univsa_runtime_server_tenant_completed_total"
      "{tenant=\"a\\\"b\\n{}\"} 5\n"
      "univsa_runtime_server_tenant_completed_total{tenant=\"plain\"} 7\n"
      "# TYPE univsa_runtime_adapt_recent_accuracy gauge\n"
      "univsa_runtime_adapt_recent_accuracy{tenant=\"a\\\"b\\n{}\"} 0.75\n"
      "# TYPE univsa_runtime_server_tenant_latency_ns histogram\n"
      "univsa_runtime_server_tenant_latency_ns_bucket"
      "{tenant=\"a\\\"b\\n{}\",le=\"2\"} 1\n"
      "univsa_runtime_server_tenant_latency_ns_bucket"
      "{tenant=\"a\\\"b\\n{}\",le=\"4\"} 2\n"
      "univsa_runtime_server_tenant_latency_ns_bucket"
      "{tenant=\"a\\\"b\\n{}\",le=\"+Inf\"} 2\n"
      "univsa_runtime_server_tenant_latency_ns_sum"
      "{tenant=\"a\\\"b\\n{}\"} 6\n"
      "univsa_runtime_server_tenant_latency_ns_count"
      "{tenant=\"a\\\"b\\n{}\"} 2\n";
  const std::string text = to_prometheus(s);
  EXPECT_EQ(text, expected);
  // The # TYPE line is emitted once per family even though two label
  // values share it.
  EXPECT_EQ(text.find("# TYPE univsa_runtime_server_tenant_completed"),
            text.rfind("# TYPE univsa_runtime_server_tenant_completed"));
}

TEST(ExporterGolden, MalformedLabelBlocksAreSanitizedWhole) {
  // Names with a brace that never forms a key=value block fall back to
  // full sanitization instead of emitting a broken label block.
  Snapshot s;
  s.counters.emplace_back("weird{oops", 1);
  s.counters.emplace_back("x{=v}", 2);
  s.counters.emplace_back("empty{}", 3);
  const std::string text = to_prometheus(s);
  EXPECT_NE(text.find("univsa_weird_oops_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("univsa_x__v__total 2\n"), std::string::npos);
  EXPECT_NE(text.find("univsa_empty___total 3\n"), std::string::npos);
  EXPECT_EQ(text.find('{', text.find("univsa_weird")), std::string::npos);
}

class ExporterRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Live-registry round trips need the compiled-in accessors; the
    // pure-function golden tests above run in every build flavor.
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    set_enabled(true);
    MetricsRegistry::instance().clear();
    trace_clear();
  }
};

TEST_F(ExporterRegistryTest, PrometheusBucketsAreCumulativeAndConsistent) {
  LatencyHistogram& hist = histogram("exporter.probe_ns");
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v * 7);
  counter("exporter.events").add(12);

  const std::string text = to_prometheus(snapshot(0));
  EXPECT_NE(text.find("univsa_exporter_events_total 12"),
            std::string::npos);

  // Parse every exporter.probe bucket line; the series must be
  // non-decreasing, end at +Inf == _count, and le bounds must ascend.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t prev_cum = 0;
  std::uint64_t prev_le = 0;
  std::uint64_t inf_value = 0;
  std::size_t bucket_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("univsa_exporter_probe_ns_bucket{le=", 0) != 0) continue;
    ++bucket_lines;
    const std::size_t q1 = line.find('"');
    const std::size_t q2 = line.find('"', q1 + 1);
    const std::string le = line.substr(q1 + 1, q2 - q1 - 1);
    const std::uint64_t cum =
        std::stoull(line.substr(line.find("} ") + 2));
    EXPECT_GE(cum, prev_cum) << line;
    prev_cum = cum;
    if (le == "+Inf") {
      inf_value = cum;
    } else {
      const std::uint64_t bound = std::stoull(le);
      EXPECT_GT(bound, prev_le) << line;
      prev_le = bound;
    }
  }
  EXPECT_GT(bucket_lines, 2u);
  EXPECT_EQ(inf_value, 1000u);
  EXPECT_NE(text.find("univsa_exporter_probe_ns_count 1000"),
            std::string::npos);
}

TEST_F(ExporterRegistryTest, SnapshotCarriesSpansAndProvenance) {
  {
    UNIVSA_SPAN("exporter.stage");
  }
  const Snapshot s = snapshot();
  EXPECT_EQ(s.spans_pushed, 1u);
  ASSERT_EQ(s.recent_spans.size(), 1u);
  EXPECT_STREQ(s.recent_spans[0].name.data(), "exporter.stage");
  EXPECT_FALSE(s.build.compiler.empty());
  EXPECT_TRUE(s.build.telemetry_compiled_in);
  // The span macro's histogram shows up in the scrape.
  bool found = false;
  for (const auto& h : s.histograms) {
    if (h.name == "exporter.stage_ns") found = h.count == 1;
  }
  EXPECT_TRUE(found);
}

TEST_F(ExporterRegistryTest, WriteJsonFileRoundTrips) {
  counter("exporter.file_probe").add(5);
  const char* tmp = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/univsa_metrics_test.json";
  ASSERT_TRUE(write_json_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"exporter.file_probe\": 5"),
            std::string::npos);
  EXPECT_NE(buffer.str().find("\"git_sha\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace univsa::telemetry
