// Trace-ring wraparound and request-scoped sampling coherence.
//
// The ring and the admission counter are process-global, so each test
// clears the ring first and only asserts properties that hold over any
// contiguous window of admissions. Suites are named Telemetry* so the
// TSan CI job's -R regex picks them up alongside the other telemetry
// suites.
#include <array>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "univsa/telemetry/trace.h"

namespace univsa::telemetry {
namespace {

TraceEvent make_event(std::uint64_t detail) {
  TraceEvent e;
  std::snprintf(e.name.data(), e.name.size(), "wrap");
  e.detail = detail;
  return e;
}

TEST(TelemetryTraceRing, WraparoundKeepsMostRecent) {
  trace_clear();
  const std::size_t total = kRingCapacity + 512;
  for (std::size_t i = 0; i < total; ++i) trace_push(make_event(i));
  EXPECT_EQ(trace_pushed(), total);
  const std::vector<TraceEvent> recent = trace_recent();
  // Single writer, so no slot can be torn: exactly the newest
  // kRingCapacity events survive, oldest first, consecutive.
  ASSERT_EQ(recent.size(), kRingCapacity);
  EXPECT_EQ(recent.front().detail, total - kRingCapacity);
  EXPECT_EQ(recent.back().detail, total - 1);
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].detail, recent[i - 1].detail + 1);
  }
}

TEST(TelemetryTraceRing, RecentRespectsMaxEvents) {
  trace_clear();
  for (std::size_t i = 0; i < 100; ++i) trace_push(make_event(i));
  const std::vector<TraceEvent> recent = trace_recent(10);
  ASSERT_EQ(recent.size(), 10u);
  EXPECT_EQ(recent.front().detail, 90u);
  EXPECT_EQ(recent.back().detail, 99u);
}

TEST(TelemetryTraceRing, ConcurrentWritersNeverTear) {
  trace_clear();
  constexpr std::size_t kThreads = 8;
  // Several wraps per writer so overwrites race with reads constantly.
  constexpr std::size_t kPerThread = kRingCapacity / 2;
  // Every field of an event encodes its writer; a torn slot would mix
  // two writers and fail the cross-check.
  const auto verify = [](const TraceEvent& e) {
    const std::uint64_t writer = e.detail >> 32;
    char expected[sizeof(e.name)];
    std::snprintf(expected, sizeof(expected), "writer-%llu",
                  static_cast<unsigned long long>(writer));
    ASSERT_STREQ(e.name.data(), expected);
    ASSERT_EQ(e.start_ns, writer);
  };

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent& e : trace_recent()) verify(e);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        std::snprintf(e.name.data(), e.name.size(), "writer-%llu",
                      static_cast<unsigned long long>(t));
        e.start_ns = t;
        e.detail = (static_cast<std::uint64_t>(t) << 32) | i;
        trace_push(e);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(trace_pushed(), kThreads * kPerThread);
  const std::vector<TraceEvent> recent = trace_recent();
  EXPECT_GT(recent.size(), 0u);
  EXPECT_LE(recent.size(), kRingCapacity);
  for (const TraceEvent& e : recent) verify(e);
}

TEST(TelemetryTraceContext, UnsampledByDefault) {
  EXPECT_FALSE(current_trace().sampled());
  EXPECT_FALSE(trace_active());
  EXPECT_FALSE(maybe_start_trace(0).sampled());
}

TEST(TelemetryTraceContext, CoherentSamplingIsExactUnderConcurrency) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  constexpr std::uint32_t kEvery = 4;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 100;
  // The admission counter is global and never reset, but any window of
  // kThreads * kPerThread consecutive admissions contains floor-exactly
  // total / kEvery multiples — that exactness is the whole point of
  // head-based sampling over per-thread tick counters.
  std::array<std::vector<std::uint64_t>, kThreads> sampled;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const TraceContext ctx = maybe_start_trace(kEvery);
        if (ctx.sampled()) sampled[t].push_back(ctx.trace_id);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::uint64_t> ids;
  std::size_t total = 0;
  for (const auto& v : sampled) {
    total += v.size();
    ids.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, kThreads * kPerThread / kEvery);
  EXPECT_EQ(ids.size(), total);  // every sampled trace id is unique
  EXPECT_EQ(ids.count(0), 0u);   // and never the unsampled sentinel
}

TEST(TelemetryTraceContext, SpansParentLinkUnderScopedContext) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  trace_clear();
  TraceContext ctx;
  ctx.trace_id = next_trace_span_id();
  ctx.span_id = next_trace_span_id();  // pretend root span
  {
    ScopedTraceContext scope(ctx);
    EXPECT_TRUE(trace_active());
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    // inner's destructor restored outer as the thread's parent.
    EXPECT_EQ(current_trace().trace_id, ctx.trace_id);
  }
  EXPECT_FALSE(current_trace().sampled());

  // Destruction order pushes inner first, then outer.
  const std::vector<TraceEvent> events = trace_recent();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name.data(), "inner");
  EXPECT_STREQ(outer.name.data(), "outer");
  EXPECT_EQ(inner.trace_id, ctx.trace_id);
  EXPECT_EQ(outer.trace_id, ctx.trace_id);
  EXPECT_EQ(outer.parent_span, ctx.span_id);
  EXPECT_EQ(inner.parent_span, outer.span_id);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_NE(inner.span_id, outer.span_id);
}

TEST(TelemetryTraceContext, SpansOutsideContextStayFlat) {
  if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  trace_clear();
  { TraceSpan flat("flat"); }
  const std::vector<TraceEvent> events = trace_recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[0].span_id, 0u);
  EXPECT_EQ(events[0].parent_span, 0u);
}

}  // namespace
}  // namespace univsa::telemetry
