// Concurrency exactness of the sharded primitives, registry identity
// semantics, and the trace ring's bounded/nesting behavior.
#include "univsa/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace univsa::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // In a -DUNIVSA_TELEMETRY=OFF build the registry/span accessors are
    // dummies; this suite checks the compiled-in behavior (the noop
    // contract has its own test binary).
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    set_enabled(true);
    MetricsRegistry::instance().clear();
    trace_clear();
  }
};

TEST_F(TelemetryTest, CounterExactUnderContention) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.total(), kThreads * kPerThread);
}

TEST_F(TelemetryTest, HistogramExactUnderContention) {
  LatencyHistogram hist;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(t * kPerThread + i);  // disjoint ranges per thread
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = hist.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  const double n = static_cast<double>(kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.sum, n * (n - 1.0) / 2.0);  // 0..n-1 recorded once
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, kThreads * kPerThread - 1);
  std::uint64_t bucket_total = 0;
  for (const auto& b : s.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, s.count);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST_F(TelemetryTest, RegistryResolvesSameObjectPerName) {
  Counter& a = counter("test.requests");
  Counter& b = counter("test.requests");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.total(), 3u);
  // Distinct types under one name coexist (separate namespaces).
  gauge("test.requests").set(1.0);
  histogram("test.requests").record(1);
  EXPECT_EQ(MetricsRegistry::instance().size(), 3u);
}

TEST_F(TelemetryTest, ClearKeepsOldReferencesValidButForgetNames) {
  Counter& old_ref = counter("test.lifetime");
  old_ref.add(5);
  MetricsRegistry::instance().clear();
  EXPECT_EQ(MetricsRegistry::instance().size(), 0u);
  EXPECT_EQ(old_ref.total(), 0u);  // zeroed, not dangling
  old_ref.add(1);                  // still safe to use
  Counter& fresh = counter("test.lifetime");
  EXPECT_NE(&fresh, &old_ref);
  EXPECT_EQ(fresh.total(), 0u);
}

TEST_F(TelemetryTest, EntriesAreNameSorted) {
  counter("b.two");
  counter("a.one");
  histogram("c.three");
  const auto entries = MetricsRegistry::instance().entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.one");
  EXPECT_EQ(entries[1].name, "b.two");
  EXPECT_EQ(entries[2].name, "c.three");
}

TEST_F(TelemetryTest, SpanRecordsHistogramAndRing) {
  LatencyHistogram hist;
  {
    TraceSpan span("unit.stage", &hist);
    EXPECT_TRUE(span.active());
    span.set_detail(42);
  }
  EXPECT_EQ(hist.snapshot().count, 1u);
  const auto events = trace_recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name.data(), "unit.stage");
  EXPECT_EQ(events[0].detail, 42u);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST_F(TelemetryTest, SpansNestWithDepthTags) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  const auto events = trace_recent();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and is pushed) first, at depth 1.
  EXPECT_STREQ(events[0].name.data(), "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name.data(), "outer");
  EXPECT_EQ(events[1].depth, 0u);
}

TEST_F(TelemetryTest, RingIsBoundedAndKeepsMostRecent) {
  const std::uint64_t base = trace_pushed();
  TraceEvent e;
  for (std::uint64_t i = 0; i < kRingCapacity + 100; ++i) {
    e.detail = i;
    trace_push(e);
  }
  EXPECT_EQ(trace_pushed() - base, kRingCapacity + 100);
  const auto events = trace_recent();
  EXPECT_LE(events.size(), kRingCapacity);
  ASSERT_FALSE(events.empty());
  // The newest event survived the wrap; the oldest did not.
  EXPECT_EQ(events.back().detail, kRingCapacity + 99);
  EXPECT_GT(events.front().detail, 0u);
}

TEST_F(TelemetryTest, DisabledSpansSkipClockAndRing) {
  set_enabled(false);
  LatencyHistogram hist;
  const std::uint64_t before = trace_pushed();
  {
    TraceSpan span("unit.disabled", &hist);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(hist.snapshot().count, 0u);
  EXPECT_EQ(trace_pushed(), before);
  set_enabled(true);
}

TEST_F(TelemetryTest, SampleTickFiresAtRequestedPeriod) {
  int fired = 0;
  for (int i = 0; i < 640; ++i) {
    if (sample_tick(64)) ++fired;
  }
  EXPECT_EQ(fired, 10);
}

TEST_F(TelemetryTest, UnivsaSpanMacroRegistersHistogram) {
  {
    UNIVSA_SPAN("unit.macro");
  }
  {
    UNIVSA_SPAN("unit.macro");
  }
  // Note: after the fixture's clear(), the macro's cached static still
  // points at the retired histogram — so only assert the ring here.
  const auto events = trace_recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name.data(), "unit.macro");
}

}  // namespace
}  // namespace univsa::telemetry
