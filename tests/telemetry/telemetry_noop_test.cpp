// Guard test for the compile-time kill switch: this TU defines
// UNIVSA_TELEMETRY_OFF before including the telemetry headers — exactly
// what every TU sees under cmake -DUNIVSA_TELEMETRY=OFF — and proves
// the instrumentation entry points degrade to no-ops: the span macro
// expands to nothing, accessors hand back dummies, and the global
// registry (linked from the normally-built library) stays empty.
#define UNIVSA_TELEMETRY_OFF 1

#include "univsa/telemetry/telemetry.h"

#include <gtest/gtest.h>

namespace univsa::telemetry {
namespace {

TEST(TelemetryNoop, CompileFlagIsVisible) {
  EXPECT_FALSE(kCompiledIn);
}

TEST(TelemetryNoop, SpanMacroIsErased) {
  const std::uint64_t before = trace_pushed();
  for (int i = 0; i < 100; ++i) {
    UNIVSA_SPAN("noop.stage");
  }
  EXPECT_EQ(trace_pushed(), before);
  EXPECT_EQ(MetricsRegistry::instance().size(), 0u);
}

TEST(TelemetryNoop, AccessorsReturnDummiesWithoutRegistering) {
  Counter& c = counter("noop.counter");
  Gauge& g = gauge("noop.gauge");
  LatencyHistogram& h = histogram("noop.histogram");
  c.add(7);
  g.set(1.5);
  h.record(100);
  // The dummies work as objects (per-instance use stays valid even in
  // disabled builds)...
  EXPECT_EQ(c.total(), 7u);
  // ...but nothing touched the global registry.
  EXPECT_EQ(MetricsRegistry::instance().size(), 0u);
  // Same-name lookups resolve to the same TU-local dummy.
  EXPECT_EQ(&c, &counter("some.other.name"));
}

TEST(TelemetryNoop, SampleTickNeverFires) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(sample_tick(1));
  }
}

}  // namespace
}  // namespace univsa::telemetry
