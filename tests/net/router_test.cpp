// ShardRouter semantics over live loopback shards:
//   - consistent-hash placement is pure, deterministic, and covers
//     every shard,
//   - routed predictions stay bit-identical to a direct reference call
//     no matter which shard answers,
//   - killing a shard (or draining its runtime) steers traffic to the
//     survivors with failovers counted, including under concurrent
//     callers racing the kill (the TSan target for this module),
//   - kHigh requests hedge off a stuck replica after hedge_timeout_ms.
#include "univsa/net/router.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "univsa/net/net_server.h"
#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"

namespace univsa::net {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

/// shards x replicas loopback cluster, every replica serving the SAME
/// model so an answer is bit-identical wherever it lands.
struct Cluster {
  vsa::ModelConfig config = small_config();
  vsa::Model model;
  std::vector<std::vector<std::shared_ptr<runtime::Server>>> runtimes;
  std::vector<std::vector<std::unique_ptr<NetServer>>> nets;

  Cluster(std::size_t shards, std::size_t replicas, std::uint64_t seed = 5) {
    Rng rng(seed);
    model = vsa::Model::random(config, rng);
    runtime::ServerOptions options;
    options.workers = 2;
    options.max_batch = 8;
    options.max_delay_us = 100;
    for (std::size_t s = 0; s < shards; ++s) {
      runtimes.emplace_back();
      nets.emplace_back();
      for (std::size_t r = 0; r < replicas; ++r) {
        // Every shard publishes every tenant (the router's failover
        // precondition), all serving the same model.
        auto registry = std::make_shared<runtime::ModelRegistry>();
        registry->publish("default", model);
        for (const std::string& tenant : tenants()) {
          registry->publish(tenant, model);
        }
        auto rt = std::make_shared<runtime::Server>(registry, options);
        nets.back().push_back(std::make_unique<NetServer>(rt));
        runtimes.back().push_back(std::move(rt));
      }
    }
  }

  static const std::vector<std::string>& tenants() {
    static const std::vector<std::string> names = [] {
      std::vector<std::string> v;
      for (int i = 0; i < 32; ++i) v.push_back("tenant-" + std::to_string(i));
      return v;
    }();
    return names;
  }

  ShardRouterOptions router_options() const {
    ShardRouterOptions o;
    for (const auto& shard : nets) {
      std::vector<Endpoint> replicas;
      for (const auto& net : shard) {
        replicas.push_back({net->host(), net->port()});
      }
      o.shards.push_back(std::move(replicas));
    }
    o.failure_backoff_ms = 100;
    o.client.connect_timeout_ms = 500;
    o.client.request_timeout_ms = 2000;
    return o;
  }

  /// A published tenant whose consistent-hash home is `shard`.
  static std::string tenant_on(const ShardRouter& router,
                               std::size_t shard) {
    for (const std::string& tenant : tenants()) {
      if (router.shard_for(tenant) == shard) return tenant;
    }
    ADD_FAILURE() << "no published tenant hashed onto shard " << shard;
    return "default";
  }
};

/// A listening socket that never accepts: connects succeed through the
/// backlog, requests vanish — the deterministic "stuck replica".
struct BlackHole {
  int fd = -1;
  std::uint16_t port = 0;

  BlackHole() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port = ntohs(addr.sin_port);
  }
  ~BlackHole() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(ShardRouter, PlacementIsDeterministicAndCoversEveryShard) {
  Cluster cluster(3, 1);
  ShardRouter router(cluster.router_options());
  ShardRouter twin(cluster.router_options());

  std::set<std::size_t> hit;
  for (int i = 0; i < 200; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    const std::size_t home = router.shard_for(tenant);
    ASSERT_LT(home, router.shard_count());
    EXPECT_EQ(home, twin.shard_for(tenant)) << tenant;
    EXPECT_EQ(home, router.shard_for(tenant)) << tenant;  // pure
    hit.insert(home);
  }
  EXPECT_EQ(hit.size(), 3u) << "200 keys left a shard empty";
  // Empty tenant routes like "default" instead of owning a hash bucket.
  EXPECT_EQ(router.shard_for(""), router.shard_for("default"));
}

TEST(ShardRouter, RoutedAnswersAreBitIdenticalToReference) {
  Cluster cluster(2, 1);
  ShardRouter router(cluster.router_options());
  Rng rng(21);
  const auto samples = random_samples(cluster.config, 30, rng);
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", cluster.model)
      ->predict_batch(samples, expected);

  for (std::size_t i = 0; i < samples.size(); ++i) {
    runtime::SubmitOptions options;
    options.tenant = "tenant-" + std::to_string(i % 7);
    const vsa::Prediction got = router.predict(samples[i], options);
    EXPECT_EQ(got.label, expected[i].label) << "sample " << i;
    EXPECT_EQ(got.scores, expected[i].scores) << "sample " << i;
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.requests, samples.size());
  EXPECT_EQ(stats.completed, samples.size());
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(ShardRouter, FailsOverWhenTheHomeShardDies) {
  Cluster cluster(2, 1);
  ShardRouterOptions options = cluster.router_options();
  options.client.request_timeout_ms = 500;
  ShardRouter router(options);
  const std::string tenant = Cluster::tenant_on(router, 0);
  Rng rng(22);
  const auto samples = random_samples(cluster.config, 4, rng);
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", cluster.model)
      ->predict_batch(samples, expected);

  cluster.nets[0][0]->shutdown();  // the tenant's whole home shard

  runtime::SubmitOptions submit;
  submit.tenant = tenant;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const vsa::Prediction got = router.predict(samples[i], submit);
    EXPECT_EQ(got.label, expected[i].label);
    EXPECT_EQ(got.scores, expected[i].scores);
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, samples.size());
  EXPECT_GE(stats.failovers, 1u);
  // After the first transport failure the endpoint cools down, so
  // later requests skip it without paying the connect attempt.
  const auto endpoints = router.endpoints();
  EXPECT_GE(endpoints[0][0].failures, 1u);
}

TEST(ShardRouter, DrainingRuntimeSteersTrafficAway) {
  Cluster cluster(2, 1);
  ShardRouter router(cluster.router_options());
  const std::string tenant = Cluster::tenant_on(router, 0);
  // Runtime drains but its NetServer stays up: responses come back
  // kShutdown with a draining health byte.
  cluster.runtimes[0][0]->shutdown();

  runtime::SubmitOptions submit;
  submit.tenant = tenant;
  std::vector<std::uint16_t> sample(cluster.config.features(), 1);
  EXPECT_NO_THROW(router.predict(sample, submit));
  EXPECT_GE(router.stats().failovers, 1u);

  const auto endpoints = router.endpoints();
  EXPECT_EQ(endpoints[0][0].health, 2) << "draining health byte cached";
  EXPECT_TRUE(endpoints[0][0].cooling);

  // probe() refreshes health without routing a request through it.
  const PongFrame pong = router.probe(1, 0);
  EXPECT_EQ(pong.health, 0);
  EXPECT_EQ(router.endpoints()[1][0].health, 0);
}

TEST(ShardRouter, HighPriorityHedgesOffAStuckReplica) {
  Cluster cluster(1, 1);
  BlackHole stuck;
  ShardRouterOptions options = cluster.router_options();
  // Shard 0 = {stuck, live}: replica rotation guarantees the stuck one
  // leads for about half the requests.
  options.shards[0].insert(options.shards[0].begin(),
                           {"127.0.0.1", stuck.port});
  options.hedge_timeout_ms = 100;
  ShardRouter router(options);

  Rng rng(23);
  const auto samples = random_samples(cluster.config, 6, rng);
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", cluster.model)
      ->predict_batch(samples, expected);

  runtime::SubmitOptions submit;
  submit.priority = runtime::Priority::kHigh;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const vsa::Prediction got = router.predict(samples[i], submit);
    EXPECT_EQ(got.label, expected[i].label);
    EXPECT_EQ(got.scores, expected[i].scores);
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, samples.size());
  EXPECT_GE(stats.hedges + stats.failovers, 1u)
      << "no request ever led with the stuck replica";
}

TEST(ShardRouter, ConcurrentCallersSurviveAReplicaKillMidRun) {
  // The TSan target: predict() from several threads while a replica of
  // each shard dies mid-run. Every request must still complete with a
  // bit-identical answer via the surviving replicas.
  Cluster cluster(2, 2);
  ShardRouterOptions options = cluster.router_options();
  options.client.request_timeout_ms = 1000;
  ShardRouter router(options);

  Rng rng(24);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 15;
  const auto samples =
      random_samples(cluster.config, kThreads * kPerThread, rng);
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", cluster.model)
      ->predict_batch(samples, expected);

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t index = t * kPerThread + i;
        runtime::SubmitOptions submit;
        submit.tenant = "tenant-" + std::to_string(index % 5);
        try {
          const vsa::Prediction got =
              router.predict(samples[index], submit);
          if (got.label != expected[index].label ||
              got.scores != expected[index].scores) {
            mismatches.fetch_add(1);
          }
        } catch (const std::exception&) {
          errors.fetch_add(1);
        }
        done.fetch_add(1);
      }
    });
  }
  // Kill one replica per shard once the run is moving; each shard keeps
  // one survivor, so no request may fail.
  while (done.load() < kThreads * kPerThread / 4) {
    std::this_thread::yield();
  }
  cluster.nets[0][0]->shutdown();
  cluster.nets[1][1]->shutdown();
  for (auto& c : callers) c.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(router.stats().completed, kThreads * kPerThread);
}

TEST(ShardRouter, RejectsEmptyTopologies) {
  EXPECT_THROW(ShardRouter(ShardRouterOptions{}), std::invalid_argument);
  ShardRouterOptions options;
  options.shards = {{}};
  EXPECT_THROW(ShardRouter(std::move(options)), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::net
