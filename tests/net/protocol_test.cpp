// Wire-protocol codec invariants (src/univsa/net/protocol.h):
//   - every frame type round-trips bit-exactly through encode/decode,
//     whole or fed one byte at a time,
//   - truncating an encoded stream at ANY byte boundary yields
//     kNeedMore, never a frame and never UB,
//   - adversarial input — oversized lengths, wrong versions, unknown
//     types, garbage counts, trailing payload bytes, random noise —
//     flips the decoder into its sticky error state without crashing.
#include "univsa/net/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace univsa::net {
namespace {

SubmitFrame sample_submit() {
  SubmitFrame f;
  f.request_id = 0x0123456789abcdefULL;
  f.trace_id = 0xdeadbeefcafef00dULL;
  f.span_id = 42;
  f.priority = 2;
  f.deadline_us = 1500;
  f.tenant = "zoo/kws";
  f.values = {0, 1, 65535, 17, 9000};
  return f;
}

ResponseFrame sample_response() {
  ResponseFrame f;
  f.request_id = 7;
  f.status = WireStatus::kOk;
  f.health = 1;
  f.label = -3;
  f.scores = {-1'000'000'000'000LL, 0, 42, 9'999'999'999LL};
  f.message = "";
  return f;
}

// Feeds the whole buffer at once and expects exactly one frame.
Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame)
      << decoder.error();
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
  return frame;
}

TEST(Protocol, SubmitRoundTrip) {
  const SubmitFrame in = sample_submit();
  std::vector<std::uint8_t> bytes;
  encode(in, bytes);
  const Frame out = decode_one(bytes);
  ASSERT_EQ(out.type, FrameType::kSubmit);
  EXPECT_EQ(out.submit.request_id, in.request_id);
  EXPECT_EQ(out.submit.trace_id, in.trace_id);
  EXPECT_EQ(out.submit.span_id, in.span_id);
  EXPECT_EQ(out.submit.priority, in.priority);
  EXPECT_EQ(out.submit.deadline_us, in.deadline_us);
  EXPECT_EQ(out.submit.tenant, in.tenant);
  EXPECT_EQ(out.submit.values, in.values);
}

TEST(Protocol, ResponseRoundTripIncludingRefusals) {
  for (const WireStatus status :
       {WireStatus::kOk, WireStatus::kOverloaded, WireStatus::kShed,
        WireStatus::kDeadlineExceeded, WireStatus::kShutdown,
        WireStatus::kUnknownTenant, WireStatus::kError,
        WireStatus::kBadFrame}) {
    ResponseFrame in = sample_response();
    in.status = status;
    in.message = status == WireStatus::kOk ? "" : to_string(status);
    std::vector<std::uint8_t> bytes;
    encode(in, bytes);
    const Frame out = decode_one(bytes);
    ASSERT_EQ(out.type, FrameType::kResponse);
    EXPECT_EQ(out.response.request_id, in.request_id);
    EXPECT_EQ(out.response.status, in.status);
    EXPECT_EQ(out.response.health, in.health);
    EXPECT_EQ(out.response.label, in.label);
    EXPECT_EQ(out.response.scores, in.scores);
    EXPECT_EQ(out.response.message, in.message);
  }
}

TEST(Protocol, PingPongRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode(PingFrame{0xfeedULL}, bytes);
  Frame out = decode_one(bytes);
  ASSERT_EQ(out.type, FrameType::kPing);
  EXPECT_EQ(out.ping.nonce, 0xfeedULL);

  bytes.clear();
  encode(PongFrame{0xfeedULL, 2, 19}, bytes);
  out = decode_one(bytes);
  ASSERT_EQ(out.type, FrameType::kPong);
  EXPECT_EQ(out.pong.nonce, 0xfeedULL);
  EXPECT_EQ(out.pong.health, 2);
  EXPECT_EQ(out.pong.queue_depth, 19u);
}

TEST(Protocol, ByteAtATimeFeedAndBackToBackFrames) {
  std::vector<std::uint8_t> bytes;
  encode(sample_submit(), bytes);
  encode(PingFrame{1}, bytes);
  encode(sample_response(), bytes);

  FrameDecoder decoder;
  std::vector<FrameType> seen;
  Frame frame;
  for (const std::uint8_t b : bytes) {
    decoder.feed(&b, 1);
    while (decoder.next(frame) == FrameDecoder::Result::kFrame) {
      seen.push_back(frame.type);
    }
    ASSERT_FALSE(decoder.failed()) << decoder.error();
  }
  const std::vector<FrameType> expected = {
      FrameType::kSubmit, FrameType::kPing, FrameType::kResponse};
  EXPECT_EQ(seen, expected);
}

TEST(Protocol, TruncationAtEveryBoundaryNeedsMoreNeverErrors) {
  std::vector<std::uint8_t> bytes;
  encode(sample_submit(), bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(bytes.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore)
        << "cut at " << cut;
    // The rest of the bytes complete the frame — truncation is a
    // recoverable wait state, not a protocol violation.
    decoder.feed(bytes.data() + cut, bytes.size() - cut);
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame)
        << "cut at " << cut << ": " << decoder.error();
  }
}

TEST(Protocol, RejectsWrongVersion) {
  std::vector<std::uint8_t> bytes;
  encode(PingFrame{1}, bytes);
  bytes[4] = kProtocolVersion + 1;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("version"), std::string::npos);
}

TEST(Protocol, RejectsUnknownFrameType) {
  std::vector<std::uint8_t> bytes;
  encode(PingFrame{1}, bytes);
  bytes[5] = 0x7f;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
}

TEST(Protocol, RejectsGarbageLengths) {
  // length = 0 (below the 2-byte header) and length > kMaxFrameBytes
  // must both fail fast — before any payload arrives.
  for (const std::uint32_t length : {0u, 1u, kMaxFrameBytes + 1, 0xffffffffu}) {
    std::vector<std::uint8_t> bytes = {
        static_cast<std::uint8_t>(length),
        static_cast<std::uint8_t>(length >> 8),
        static_cast<std::uint8_t>(length >> 16),
        static_cast<std::uint8_t>(length >> 24)};
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError)
        << "length " << length;
  }
}

TEST(Protocol, RejectsOversizedCounts) {
  // A submit frame whose value count claims more than the cap: the
  // count check fires before any multiply, so a 32-bit count of
  // 0xffffffff cannot overflow into a small allocation.
  std::vector<std::uint8_t> bytes;
  SubmitFrame f = sample_submit();
  f.values.clear();
  encode(f, bytes);
  // Patch the value-count field (last 4 bytes of the payload).
  for (int i = 0; i < 4; ++i) bytes[bytes.size() - 4 + i] = 0xff;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.error().find("count"), std::string::npos);
}

TEST(Protocol, RejectsPayloadShorterOrLongerThanDeclared) {
  // Declared length covers the payload exactly; a frame whose payload
  // parses short (truncated tenant) or leaves trailing bytes is
  // malformed even when the length prefix itself is plausible.
  std::vector<std::uint8_t> ok;
  encode(PingFrame{9}, ok);

  std::vector<std::uint8_t> trailing = ok;
  trailing.push_back(0xaa);  // extra payload byte...
  trailing[0] += 1;          // ...covered by the declared length
  FrameDecoder decoder;
  decoder.feed(trailing.data(), trailing.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.error().find("trailing"), std::string::npos);

  std::vector<std::uint8_t> shorter = ok;
  shorter.pop_back();  // payload byte gone...
  shorter[0] -= 1;     // ...and the length agrees: truncated ping
  FrameDecoder decoder2;
  decoder2.feed(shorter.data(), shorter.size());
  EXPECT_EQ(decoder2.next(frame), FrameDecoder::Result::kError);
}

TEST(Protocol, RejectsOutOfRangePriorityAndStatus) {
  std::vector<std::uint8_t> bytes;
  SubmitFrame submit = sample_submit();
  encode(submit, bytes);
  bytes[6 + 24] = 3;  // priority byte (after 3 u64 ids)
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);

  bytes.clear();
  encode(sample_response(), bytes);
  bytes[6 + 8] = 99;  // status byte (after the request id)
  FrameDecoder decoder2;
  decoder2.feed(bytes.data(), bytes.size());
  EXPECT_EQ(decoder2.next(frame), FrameDecoder::Result::kError);
}

TEST(Protocol, ErrorStateIsSticky) {
  std::vector<std::uint8_t> bad;
  encode(PingFrame{1}, bad);
  bad[4] = 0;  // bad version
  std::vector<std::uint8_t> good;
  encode(PingFrame{2}, good);

  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  // Valid frames after the poison pill never resynchronise.
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kError);
  EXPECT_TRUE(decoder.failed());
}

TEST(Protocol, EncodeCapsOversizedFields) {
  // Defensive encode: fields beyond the cap are clamped so a buggy
  // caller cannot emit a frame its peer must reject.
  SubmitFrame f;
  f.tenant.assign(kMaxTenantBytes + 100, 't');
  std::vector<std::uint8_t> bytes;
  encode(f, bytes);
  const Frame out = decode_one(bytes);
  EXPECT_EQ(out.submit.tenant.size(), kMaxTenantBytes);

  ResponseFrame r;
  r.message.assign(kMaxMessageBytes + 7, 'm');
  bytes.clear();
  encode(r, bytes);
  const Frame out2 = decode_one(bytes);
  EXPECT_EQ(out2.response.message.size(), kMaxMessageBytes);
}

TEST(Protocol, RandomNoiseNeverCrashes) {
  // Deterministic fuzz: random byte soup either waits for more input
  // or errors out; it must never produce UB (ASan/UBSan CI runs this).
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> chunk(1 + rng() % 512);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(byte(rng));
    decoder.feed(chunk.data(), chunk.size());
    Frame frame;
    for (int i = 0; i < 64; ++i) {
      const auto result = decoder.next(frame);
      if (result != FrameDecoder::Result::kFrame) break;
    }
  }
}

TEST(Protocol, WireStatusMapsEverySubmitStatus) {
  using runtime::SubmitStatus;
  EXPECT_EQ(to_wire(SubmitStatus::kOk), WireStatus::kOk);
  EXPECT_EQ(to_wire(SubmitStatus::kOverloaded), WireStatus::kOverloaded);
  EXPECT_EQ(to_wire(SubmitStatus::kShed), WireStatus::kShed);
  EXPECT_EQ(to_wire(SubmitStatus::kDeadlineExceeded),
            WireStatus::kDeadlineExceeded);
  EXPECT_EQ(to_wire(SubmitStatus::kShutdown), WireStatus::kShutdown);
  EXPECT_EQ(to_wire(SubmitStatus::kUnknownTenant),
            WireStatus::kUnknownTenant);
}

}  // namespace
}  // namespace univsa::net
