// Loopback NetServer/NetClient semantics:
//   - every prediction served over the wire is bit-identical (label AND
//     scores) to a direct ReferenceBackend call,
//   - concurrent clients each get their own correlated answers,
//   - refusals cross the wire typed: an unknown tenant throws
//     runtime::UnknownTenant client-side, a drained server maps to
//     RequestRefused(kShutdown),
//   - a peer speaking garbage gets one kBadFrame response and a closed
//     connection; the server survives and keeps serving others,
//   - pings report the runtime's live HealthState.
#include "univsa/net/net_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "univsa/net/net_client.h"
#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"

namespace univsa::net {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

struct Fixture {
  vsa::ModelConfig config = small_config();
  vsa::Model model;
  std::shared_ptr<runtime::Server> server;
  std::unique_ptr<NetServer> net;

  explicit Fixture(std::uint64_t seed = 7,
                   runtime::ServerOptions options = {}) {
    Rng rng(seed);
    model = vsa::Model::random(config, rng);
    options.workers = 2;
    options.max_batch = 8;
    options.max_delay_us = 100;
    server = std::make_shared<runtime::Server>(model, options);
    net = std::make_unique<NetServer>(server);
  }

  NetClientOptions client_options() const {
    NetClientOptions o;
    o.host = net->host();
    o.port = net->port();
    return o;
  }
};

TEST(NetServer, RoundTripsAreBitIdenticalToReference) {
  Fixture fx;
  Rng rng(11);
  const auto samples = random_samples(fx.config, 40, rng);
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", fx.model)
      ->predict_batch(samples, expected);

  NetClient client(fx.client_options());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const vsa::Prediction got = client.predict(samples[i]);
    EXPECT_EQ(got.label, expected[i].label) << "sample " << i;
    EXPECT_EQ(got.scores, expected[i].scores) << "sample " << i;
  }
  const NetServerStats stats = fx.net->stats();
  EXPECT_EQ(stats.frames_in, samples.size());
  EXPECT_EQ(stats.frames_out, samples.size());
  EXPECT_EQ(stats.decode_errors, 0u);
}

TEST(NetServer, ConcurrentClientsGetTheirOwnAnswers) {
  Fixture fx;
  Rng rng(12);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20;
  const auto samples = random_samples(fx.config, kThreads * kPerThread, rng);
  std::vector<vsa::Prediction> expected;
  runtime::make_backend("reference", fx.model)
      ->predict_batch(samples, expected);

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      NetClient client(fx.client_options());
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t index = t * kPerThread + i;
        const vsa::Prediction got = client.predict(samples[index]);
        if (got.label != expected[index].label ||
            got.scores != expected[index].scores) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(NetServer, UnknownTenantThrowsTypedAcrossTheWire) {
  Fixture fx;
  NetClient client(fx.client_options());
  runtime::SubmitOptions options;
  options.tenant = "zoo/never-published";
  std::vector<std::uint16_t> sample(fx.config.features(), 0);
  EXPECT_THROW(client.predict(sample, options), runtime::UnknownTenant);
  EXPECT_GE(fx.net->stats().refused, 1u);
}

TEST(NetServer, DrainedRuntimeRefusesWithShutdownStatus) {
  Fixture fx;
  std::vector<std::uint16_t> sample(fx.config.features(), 1);
  NetClient client(fx.client_options());
  ASSERT_NO_THROW(client.predict(sample));
  fx.server->shutdown();  // runtime drains; NetServer still up
  try {
    client.predict(sample);
    FAIL() << "expected a shutdown refusal";
  } catch (const runtime::RequestRefused& e) {
    EXPECT_EQ(e.status(), runtime::SubmitStatus::kShutdown);
  }
}

TEST(NetServer, PingReportsHealthAndSurvivesDrain) {
  Fixture fx;
  NetClient client(fx.client_options());
  PongFrame pong = client.ping();
  EXPECT_EQ(pong.health,
            static_cast<std::uint8_t>(runtime::HealthState::kServing));
  fx.server->shutdown();
  pong = client.ping();
  EXPECT_EQ(pong.health,
            static_cast<std::uint8_t>(runtime::HealthState::kDraining));
}

TEST(NetServer, GarbageStreamGetsBadFrameThenClose) {
  Fixture fx;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.net->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // A plausible length prefix followed by a bogus version byte.
  std::vector<std::uint8_t> garbage;
  encode(PingFrame{1}, garbage);
  garbage[4] = 0x42;
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // Expect one kBadFrame response, then EOF.
  FrameDecoder decoder;
  Frame frame;
  bool got_bad_frame = false;
  std::uint8_t buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.feed(buf, static_cast<std::size_t>(n));
    if (decoder.next(frame) == FrameDecoder::Result::kFrame &&
        frame.type == FrameType::kResponse &&
        frame.response.status == WireStatus::kBadFrame) {
      got_bad_frame = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(got_bad_frame);
  EXPECT_GE(fx.net->stats().decode_errors, 1u);

  // The server is still healthy for well-behaved clients.
  NetClient client(fx.client_options());
  std::vector<std::uint16_t> sample(fx.config.features(), 2);
  EXPECT_NO_THROW(client.predict(sample));
}

TEST(NetServer, ShutdownRefusesNewConnectionsButIsIdempotent) {
  Fixture fx;
  const std::uint16_t port = fx.net->port();
  fx.net->shutdown();
  fx.net->shutdown();  // idempotent
  EXPECT_FALSE(fx.net->running());

  NetClientOptions o;
  o.port = port;
  o.connect_timeout_ms = 200;
  o.request_timeout_ms = 200;
  NetClient client(o);
  std::vector<std::uint16_t> sample(fx.config.features(), 3);
  const NetClient::Result result =
      client.predict_once(sample, {}, nullptr);
  EXPECT_EQ(result.status, WireStatus::kTransport);
}

TEST(NetServer, ClientRetriesTransportFailuresThenThrowsNetError) {
  NetClientOptions o;
  o.port = 1;  // nothing listens on port 1 for this uid
  o.connect_timeout_ms = 100;
  o.request_timeout_ms = 100;
  o.max_retries = 2;
  o.retry_backoff_us = 50;
  NetClient client(o);
  EXPECT_THROW(client.predict({1, 2, 3}), NetError);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_GE(client.stats().transport_errors, 1u);
}

}  // namespace
}  // namespace univsa::net
