#include "univsa/baselines/svm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/common/rng.h"

namespace univsa::baselines {
namespace {

void make_blobs(std::size_t per_class, std::size_t n, double separation,
                Tensor& x, std::vector<int>& y, Rng& rng,
                std::size_t classes = 2) {
  x = Tensor({per_class * classes, n});
  y.resize(per_class * classes);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      y[row] = static_cast<int>(c);
      for (std::size_t j = 0; j < n; ++j) {
        x.at(row, j) = static_cast<float>(
            rng.normal(j % classes == c ? separation : 0.0, 1.0));
      }
    }
  }
}

TEST(SvmTest, SeparatesLinearBlobs) {
  Rng rng(1);
  Tensor x;
  std::vector<int> y;
  make_blobs(60, 4, 3.0, x, y, rng);
  SvmClassifier svm;
  svm.fit(x, y, 2);
  Tensor xt;
  std::vector<int> yt;
  make_blobs(30, 4, 3.0, xt, yt, rng);
  EXPECT_GT(svm.accuracy(xt, yt), 0.95);
}

TEST(SvmTest, RbfKernelSolvesXor) {
  // XOR is not linearly separable — the RBF kernel must handle it.
  Rng rng(2);
  const std::size_t per_cell = 40;
  Tensor x({4 * per_cell, 2});
  std::vector<int> y(4 * per_cell);
  const double centers[4][2] = {{0, 0}, {3, 3}, {0, 3}, {3, 0}};
  for (std::size_t cell = 0; cell < 4; ++cell) {
    for (std::size_t i = 0; i < per_cell; ++i) {
      const std::size_t row = cell * per_cell + i;
      x.at(row, 0) = static_cast<float>(rng.normal(centers[cell][0], 0.4));
      x.at(row, 1) = static_cast<float>(rng.normal(centers[cell][1], 0.4));
      y[row] = cell < 2 ? 0 : 1;
    }
  }
  SvmOptions options;
  options.c = 10.0;
  options.gamma = 1.0;
  SvmClassifier svm(options);
  svm.fit(x, y, 2);
  EXPECT_GT(svm.accuracy(x, y), 0.95);
}

TEST(SvmTest, MultiClassOneVsRest) {
  Rng rng(3);
  Tensor x;
  std::vector<int> y;
  make_blobs(50, 6, 3.0, x, y, rng, 3);
  SvmClassifier svm;
  svm.fit(x, y, 3);
  EXPECT_EQ(svm.classifier_count(), 3u);
  EXPECT_GT(svm.accuracy(x, y), 0.9);
}

TEST(SvmTest, BinaryUsesSingleMachine) {
  Rng rng(4);
  Tensor x;
  std::vector<int> y;
  make_blobs(30, 4, 3.0, x, y, rng);
  SvmClassifier svm;
  svm.fit(x, y, 2);
  EXPECT_EQ(svm.classifier_count(), 1u);
  EXPECT_GT(svm.support_vector_count(), 0u);
  EXPECT_LE(svm.support_vector_count(), 60u);
}

TEST(SvmTest, FewerSupportVectorsThanSamplesOnEasyData) {
  Rng rng(5);
  Tensor x;
  std::vector<int> y;
  make_blobs(100, 4, 5.0, x, y, rng);
  SvmClassifier svm;
  svm.fit(x, y, 2);
  // Easy margins: most points are not support vectors.
  EXPECT_LT(svm.support_vector_count(), 150u);
}

TEST(SvmTest, ScaleGammaIsComputedFromData) {
  Rng rng(6);
  Tensor x;
  std::vector<int> y;
  make_blobs(30, 4, 2.0, x, y, rng);
  SvmOptions options;
  options.gamma = 0.0;  // "scale"
  SvmClassifier svm(options);
  EXPECT_NO_THROW(svm.fit(x, y, 2));
  EXPECT_GT(svm.accuracy(x, y), 0.8);
}

TEST(SvmTest, ValidatesInputs) {
  SvmOptions bad;
  bad.c = 0.0;
  EXPECT_THROW(SvmClassifier{bad}, std::invalid_argument);
  SvmClassifier svm;
  EXPECT_THROW(svm.predict_one(std::vector<float>{1.0f}),
               std::invalid_argument);
  Tensor x({4, 2});
  EXPECT_THROW(svm.fit(x, {0, 1, 0}, 2), std::invalid_argument);
}

TEST(SvmTest, DeterministicForFixedSeed) {
  Rng rng(7);
  Tensor x;
  std::vector<int> y;
  make_blobs(40, 4, 2.0, x, y, rng);
  SvmClassifier a;
  a.fit(x, y, 2);
  SvmClassifier b;
  b.fit(x, y, 2);
  EXPECT_EQ(a.support_vector_count(), b.support_vector_count());
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    EXPECT_EQ(a.predict(x)[i], b.predict(x)[i]);
  }
}

}  // namespace
}  // namespace univsa::baselines
