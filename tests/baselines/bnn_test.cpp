#include "univsa/baselines/bnn.h"

#include <gtest/gtest.h>

#include "univsa/common/rng.h"

namespace univsa::baselines {
namespace {

void make_blobs(std::size_t per_class, std::size_t n, double separation,
                Tensor& x, std::vector<int>& y, Rng& rng,
                std::size_t classes = 2) {
  x = Tensor({per_class * classes, n});
  y.resize(per_class * classes);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      y[row] = static_cast<int>(c);
      for (std::size_t j = 0; j < n; ++j) {
        x.at(row, j) = static_cast<float>(
            rng.normal(j % classes == c ? separation : 0.0, 1.0));
      }
    }
  }
}

TEST(BnnTest, SeparatesBlobs) {
  Rng rng(1);
  Tensor x;
  std::vector<int> y;
  make_blobs(80, 8, 2.5, x, y, rng);
  BnnOptions options;
  options.hidden = 32;
  options.epochs = 25;
  BnnClassifier bnn(options);
  bnn.fit(x, y, 2);
  Tensor xt;
  std::vector<int> yt;
  make_blobs(40, 8, 2.5, xt, yt, rng);
  EXPECT_GT(bnn.accuracy(xt, yt), 0.9);
}

TEST(BnnTest, MultiClass) {
  Rng rng(2);
  Tensor x;
  std::vector<int> y;
  make_blobs(60, 9, 3.0, x, y, rng, 3);
  BnnOptions options;
  options.hidden = 48;
  options.epochs = 25;
  BnnClassifier bnn(options);
  bnn.fit(x, y, 3);
  EXPECT_GT(bnn.accuracy(x, y), 0.85);
}

TEST(BnnTest, LossDecreases) {
  Rng rng(3);
  Tensor x;
  std::vector<int> y;
  make_blobs(50, 6, 2.0, x, y, rng);
  BnnClassifier bnn;
  bnn.fit(x, y, 2);
  ASSERT_GE(bnn.loss_history().size(), 2u);
  EXPECT_LT(bnn.loss_history().back(), bnn.loss_history().front());
}

TEST(BnnTest, MemoryAccountsBinaryWeights) {
  Rng rng(4);
  Tensor x;
  std::vector<int> y;
  make_blobs(20, 10, 2.0, x, y, rng);
  BnnOptions options;
  options.hidden = 16;
  options.epochs = 2;
  BnnClassifier bnn(options);
  bnn.fit(x, y, 2);
  // (16·10 + 2·16) bits = 192 bits = 24 bytes (+ scales).
  EXPECT_NEAR(bnn.memory_kb(), 192.0 / 8.0 / 1000.0 + 0.008, 1e-6);
}

TEST(BnnTest, PredictOneMatchesBatch) {
  Rng rng(5);
  Tensor x;
  std::vector<int> y;
  make_blobs(30, 5, 2.0, x, y, rng);
  BnnOptions options;
  options.epochs = 5;
  BnnClassifier bnn(options);
  bnn.fit(x, y, 2);
  const auto batch = bnn.predict(x);
  for (std::size_t i = 0; i < 10; ++i) {
    std::vector<float> row(5);
    for (std::size_t j = 0; j < 5; ++j) row[j] = x.at(i, j);
    EXPECT_EQ(bnn.predict_one(row), batch[i]);
  }
}

TEST(BnnTest, ValidatesInputs) {
  BnnClassifier bnn;
  EXPECT_THROW(bnn.predict_one(std::vector<float>{1.0f}),
               std::invalid_argument);
  BnnOptions bad;
  bad.hidden = 1;
  EXPECT_THROW(BnnClassifier{bad}, std::invalid_argument);
  Rng rng(6);
  Tensor x({4, 2});
  EXPECT_THROW(bnn.fit(x, {0, 1, 0}, 2), std::invalid_argument);
}

TEST(BnnTest, DeterministicForSeed) {
  Rng rng(7);
  Tensor x;
  std::vector<int> y;
  make_blobs(30, 4, 2.0, x, y, rng);
  BnnOptions options;
  options.epochs = 4;
  BnnClassifier a(options);
  a.fit(x, y, 2);
  BnnClassifier b(options);
  b.fit(x, y, 2);
  EXPECT_EQ(a.predict(x), b.predict(x));
}

}  // namespace
}  // namespace univsa::baselines
