#include "univsa/baselines/knn.h"

#include <gtest/gtest.h>

#include "univsa/common/rng.h"

namespace univsa::baselines {
namespace {

void make_blobs(std::size_t per_class, std::size_t n, double separation,
                Tensor& x, std::vector<int>& y, Rng& rng,
                std::size_t classes = 2) {
  x = Tensor({per_class * classes, n});
  y.resize(per_class * classes);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      y[row] = static_cast<int>(c);
      for (std::size_t j = 0; j < n; ++j) {
        x.at(row, j) = static_cast<float>(
            rng.normal(j % classes == c ? separation : 0.0, 1.0));
      }
    }
  }
}

TEST(KnnTest, OneNearestNeighbourMemorizesTrainingSet) {
  Rng rng(1);
  Tensor x;
  std::vector<int> y;
  make_blobs(40, 4, 2.0, x, y, rng);
  KnnClassifier knn(1);
  knn.fit(x, y, 2);
  EXPECT_EQ(knn.accuracy(x, y), 1.0);
}

TEST(KnnTest, SeparatesBlobs) {
  Rng rng(2);
  Tensor x;
  std::vector<int> y;
  make_blobs(100, 6, 3.0, x, y, rng);
  KnnClassifier knn(5);
  knn.fit(x, y, 2);
  Tensor xt;
  std::vector<int> yt;
  make_blobs(40, 6, 3.0, xt, yt, rng);
  EXPECT_GT(knn.accuracy(xt, yt), 0.95);
}

TEST(KnnTest, MultiClassVoting) {
  Rng rng(3);
  Tensor x;
  std::vector<int> y;
  make_blobs(60, 6, 3.0, x, y, rng, 3);
  KnnClassifier knn(5);
  knn.fit(x, y, 3);
  EXPECT_GT(knn.accuracy(x, y), 0.9);
}

TEST(KnnTest, KLargerThanTrainingSetClamps) {
  Tensor x({3, 2});
  x.at(0, 0) = 0.0f;
  x.at(1, 0) = 1.0f;
  x.at(2, 0) = 2.0f;
  const std::vector<int> y = {0, 0, 1};
  KnnClassifier knn(100);
  knn.fit(x, y, 2);
  // Uses all 3 neighbours: majority class 0.
  EXPECT_EQ(knn.predict_one(std::vector<float>{0.5f, 0.0f}), 0);
}

TEST(KnnTest, StoredBytesCountsTrainingSet) {
  Tensor x({10, 4});
  const std::vector<int> y(10, 0);
  KnnClassifier knn(1);
  // Needs both classes for fit validation; rebuild labels.
  std::vector<int> labels = y;
  labels[5] = 1;
  knn.fit(x, labels, 2);
  EXPECT_EQ(knn.stored_bytes(), 10u * 4u * 4u + 10u * 4u);
}

TEST(KnnTest, ValidatesInputs) {
  KnnClassifier knn(5);
  EXPECT_THROW(knn.predict_one(std::vector<float>{1.0f}),
               std::invalid_argument);  // not fitted
  EXPECT_THROW(KnnClassifier(0), std::invalid_argument);
  Tensor x({4, 2});
  EXPECT_THROW(knn.fit(x, {0, 1, 0}, 2), std::invalid_argument);
  EXPECT_THROW(knn.fit(x, {0, 1, 0, 5}, 2), std::invalid_argument);
}

TEST(KnnTest, FeatureCountValidatedAtPredict) {
  Tensor x({4, 3});
  KnnClassifier knn(1);
  knn.fit(x, {0, 1, 0, 1}, 2);
  EXPECT_THROW(knn.predict_one(std::vector<float>{1.0f, 2.0f}),
               std::invalid_argument);
}

}  // namespace
}  // namespace univsa::baselines
