#include "univsa/baselines/lda.h"

#include <gtest/gtest.h>

#include "univsa/common/rng.h"

namespace univsa::baselines {
namespace {

/// Two well-separated Gaussian blobs in N dimensions.
void make_blobs(std::size_t per_class, std::size_t n, double separation,
                Tensor& x, std::vector<int>& y, Rng& rng,
                std::size_t classes = 2) {
  x = Tensor({per_class * classes, n});
  y.resize(per_class * classes);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      y[row] = static_cast<int>(c);
      for (std::size_t j = 0; j < n; ++j) {
        const double mean =
            (j % classes == c) ? separation : 0.0;
        x.at(row, j) = static_cast<float>(rng.normal(mean, 1.0));
      }
    }
  }
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [8, 7] -> x = [1.3..., 1.4...]? Solve:
  // 4x + 2y = 8; 2x + 3y = 7 -> x = 1.25, y = 1.5.
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {8, 7};
  cholesky_solve_inplace(a, 2, b, 1);
  EXPECT_NEAR(b[0], 1.25, 1e-9);
  EXPECT_NEAR(b[1], 1.5, 1e-9);
}

TEST(CholeskyTest, MultipleRightHandSides) {
  std::vector<double> a = {2, 0, 0, 5};
  std::vector<double> b = {2, 4, 10, 20};  // rhs columns interleaved
  cholesky_solve_inplace(a, 2, b, 2);
  EXPECT_NEAR(b[0], 1.0, 1e-9);   // 2x=2
  EXPECT_NEAR(b[1], 2.0, 1e-9);   // 2x=4
  EXPECT_NEAR(b[2], 2.0, 1e-9);   // 5y=10
  EXPECT_NEAR(b[3], 4.0, 1e-9);   // 5y=20
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> b = {1, 1};
  EXPECT_THROW(cholesky_solve_inplace(a, 2, b, 1), std::invalid_argument);
}

TEST(LdaTest, SeparatesGaussianBlobs) {
  Rng rng(1);
  Tensor x;
  std::vector<int> y;
  make_blobs(100, 8, 3.0, x, y, rng);
  LdaClassifier lda;
  lda.fit(x, y, 2);

  Tensor xt;
  std::vector<int> yt;
  make_blobs(50, 8, 3.0, xt, yt, rng);
  EXPECT_GT(lda.accuracy(xt, yt), 0.97);
}

TEST(LdaTest, MultiClass) {
  Rng rng(2);
  Tensor x;
  std::vector<int> y;
  make_blobs(80, 9, 3.0, x, y, rng, 3);
  LdaClassifier lda;
  lda.fit(x, y, 3);
  EXPECT_GT(lda.accuracy(x, y), 0.95);
  EXPECT_EQ(lda.classes(), 3u);
}

TEST(LdaTest, PriorsBreakTiesTowardFrequentClass) {
  // Identical class distributions: prediction must favour the class with
  // the larger prior.
  Rng rng(3);
  Tensor x({100, 2});
  std::vector<int> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = static_cast<float>(rng.normal());
    x.at(i, 1) = static_cast<float>(rng.normal());
    y[i] = i < 90 ? 0 : 1;
  }
  LdaClassifier lda;
  lda.fit(x, y, 2);
  std::size_t zeros = 0;
  for (const auto p : lda.predict(x)) {
    if (p == 0) ++zeros;
  }
  EXPECT_GT(zeros, 75u);
}

TEST(LdaTest, ParameterCountIsClassesTimesFeatures) {
  Rng rng(4);
  Tensor x;
  std::vector<int> y;
  make_blobs(30, 5, 2.0, x, y, rng);
  LdaClassifier lda;
  lda.fit(x, y, 2);
  EXPECT_EQ(lda.parameter_count(), 10u);
}

TEST(LdaTest, ValidatesInputs) {
  LdaClassifier lda;
  EXPECT_THROW(lda.predict_one(std::vector<float>{1.0f}),
               std::invalid_argument);  // not fitted
  Rng rng(5);
  Tensor x;
  std::vector<int> y;
  make_blobs(10, 3, 1.0, x, y, rng);
  EXPECT_THROW(lda.fit(x, y, 1), std::invalid_argument);
  y[0] = 7;
  EXPECT_THROW(lda.fit(x, y, 2), std::invalid_argument);
}

TEST(LdaTest, MissingClassRejected) {
  Rng rng(6);
  Tensor x({10, 2});
  std::vector<int> y(10, 0);  // class 1 absent
  EXPECT_THROW(LdaClassifier().fit(x, y, 2), std::invalid_argument);
}

TEST(LdaTest, HandlesCorrelatedFeaturesViaRegularization) {
  // Duplicate feature columns make the covariance singular; the ridge
  // must keep the solve stable.
  Rng rng(7);
  Tensor x({60, 4});
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    const int label = i < 30 ? 0 : 1;
    y[i] = label;
    const float base = static_cast<float>(rng.normal(label * 3.0, 1.0));
    x.at(i, 0) = base;
    x.at(i, 1) = base;  // exact duplicate
    x.at(i, 2) = static_cast<float>(rng.normal());
    x.at(i, 3) = static_cast<float>(rng.normal());
  }
  LdaClassifier lda(1e-2);
  EXPECT_NO_THROW(lda.fit(x, y, 2));
  EXPECT_GT(lda.accuracy(x, y), 0.9);
}

}  // namespace
}  // namespace univsa::baselines
