// End-to-end pipeline test: synthesize data -> select mask -> train the
// partial BNN -> extract the deployed binary model -> serialize ->
// reload -> run on the hardware functional simulator. Every hand-off in
// that chain must preserve predictions.
#include <gtest/gtest.h>

#include <cstdio>

#include "univsa/data/synthetic.h"
#include "univsa/hw/accelerator.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/hw/pipeline.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"
#include "univsa/vsa/serialization.h"

namespace univsa {
namespace {

struct Pipeline {
  data::SyntheticResult data;
  vsa::ModelConfig config;
  train::UniVsaTrainResult trained;
};

Pipeline run_pipeline() {
  data::SyntheticSpec spec;
  spec.name = "e2e";
  spec.domain = data::Domain::kFrequency;
  spec.windows = 6;
  spec.length = 10;
  spec.classes = 3;
  spec.levels = 64;
  spec.train_count = 200;
  spec.test_count = 100;
  spec.noise = 0.6;
  spec.seed = 77;

  vsa::ModelConfig config;
  config.W = 6;
  config.L = 10;
  config.C = 3;
  config.M = 64;
  config.D_H = 8;
  config.D_L = 2;
  config.D_K = 3;
  config.O = 8;
  config.Theta = 3;

  train::TrainOptions options;
  options.epochs = 12;
  options.seed = 5;

  Pipeline p{data::generate(spec), config, {}};
  p.trained = train::train_univsa(config, p.data.train, options);
  return p;
}

const Pipeline& pipeline() {
  static const Pipeline p = run_pipeline();
  return p;
}

TEST(EndToEndTest, TrainedModelBeatsChance) {
  const auto& p = pipeline();
  const double acc = p.trained.model.accuracy(p.data.test);
  EXPECT_GT(acc, 0.6) << "3-class chance is 0.33";
}

TEST(EndToEndTest, SerializationPreservesEveryPrediction) {
  const auto& p = pipeline();
  const std::string path = ::testing::TempDir() + "/e2e.uvsa";
  vsa::ModelIo::save_file(p.trained.model, path);
  const vsa::Model reloaded = vsa::ModelIo::load_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(reloaded, p.trained.model);
  for (std::size_t i = 0; i < p.data.test.size(); ++i) {
    EXPECT_EQ(reloaded.predict(p.data.test.values(i)).label,
              p.trained.model.predict(p.data.test.values(i)).label);
  }
}

TEST(EndToEndTest, HardwareSimulatorMatchesDeployedModel) {
  const auto& p = pipeline();
  const hw::Accelerator accel(p.trained.model);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto& values = p.data.test.values(i);
    const hw::RunTrace trace = accel.run(values);
    const vsa::Prediction sw = p.trained.model.predict(values);
    ASSERT_EQ(trace.prediction.label, sw.label) << "sample " << i;
    ASSERT_EQ(trace.prediction.scores, sw.scores) << "sample " << i;
  }
}

TEST(EndToEndTest, HardwareCyclesMatchTimingModel) {
  const auto& p = pipeline();
  const hw::Accelerator accel(p.trained.model);
  const hw::RunTrace trace = accel.run(p.data.test.values(0));
  const hw::StageCycles expected = hw::stage_cycles(p.config);
  EXPECT_EQ(trace.cycles.dvp, expected.dvp);
  EXPECT_EQ(trace.cycles.biconv, expected.biconv);
  EXPECT_EQ(trace.cycles.encoding, expected.encoding);
  EXPECT_EQ(trace.cycles.similarity, expected.similarity);
}

TEST(EndToEndTest, ModelPayloadTracksEquationFive) {
  const auto& p = pipeline();
  const double kb =
      static_cast<double>(vsa::ModelIo::payload_bytes(p.trained.model)) /
      1000.0;
  EXPECT_NEAR(kb, vsa::memory_kb(p.config), 0.01);
}

TEST(EndToEndTest, StreamingScheduleSustainsThroughput) {
  const auto& p = pipeline();
  const hw::StageCycles cycles = hw::stage_cycles(p.config);
  const hw::StreamSchedule schedule =
      hw::schedule_stream(cycles, 20, hw::TimingParams{}.controller_overhead);
  EXPECT_EQ(schedule.samples.size(), 20u);
  // Sustained rate within 20% of the closed-form throughput.
  const double achieved = schedule.achieved_throughput(250.0);
  const double model = hw::throughput_per_s(p.config);
  EXPECT_GT(achieved, 0.8 * model);
}

TEST(EndToEndTest, HardwareReportIsSelfConsistent) {
  const auto& p = pipeline();
  const hw::HardwareReport r = hw::report_for(p.config);
  EXPECT_NEAR(r.memory_kb, vsa::memory_kb(p.config), 1e-9);
  EXPECT_EQ(r.cycles.interval(), r.cycles.biconv);
  EXPECT_GT(r.power_w, 0.0);
  EXPECT_EQ(r.dsps, 0u);
}

}  // namespace
}  // namespace univsa
