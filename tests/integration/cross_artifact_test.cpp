// Cross-artifact consistency: one trained model, four representations —
//   (1) the in-library packed model,
//   (2) the cycle-counted hardware functional simulator,
//   (3) the serialized .uvsa file reloaded,
//   (4) the emitted C99 firmware, compiled and executed,
// all pinned to identical predictions on the same inputs; plus the
// Verilog artifact checked structurally with its testbench expectation
// derived from (1).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "univsa/data/synthetic.h"
#include "univsa/hw/c_emitter.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/hw/verilog_gen.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/serialization.h"

namespace univsa {
namespace {

struct Artifacts {
  data::SyntheticResult data;
  vsa::Model model;
};

const Artifacts& artifacts() {
  static const Artifacts a = [] {
    data::SyntheticSpec spec;
    spec.name = "xartifact";
    spec.domain = data::Domain::kTime;
    spec.windows = 5;
    spec.length = 8;
    spec.classes = 4;
    spec.levels = 32;
    spec.train_count = 180;
    spec.test_count = 60;
    spec.noise = 0.4;
    spec.separation = 1.4;
    spec.seed = 404;

    vsa::ModelConfig config;
    config.W = 5;
    config.L = 8;
    config.C = 4;
    config.M = 32;
    config.D_H = 4;
    config.D_L = 2;
    config.D_K = 3;
    config.O = 7;
    config.Theta = 3;

    train::TrainOptions options;
    options.epochs = 10;
    options.seed = 2;
    Artifacts out{data::generate(spec), vsa::Model()};
    out.model = train::train_univsa(config, out.data.train, options).model;
    return out;
  }();
  return a;
}

TEST(CrossArtifactTest, FunctionalSimMatchesLibrary) {
  const auto& a = artifacts();
  const hw::Accelerator accel(a.model);
  for (std::size_t i = 0; i < a.data.test.size(); ++i) {
    const auto& values = a.data.test.values(i);
    const auto sw = a.model.predict(values);
    const auto hw_trace = accel.run(values);
    ASSERT_EQ(hw_trace.prediction.scores, sw.scores) << "sample " << i;
  }
}

TEST(CrossArtifactTest, SerializedReloadMatchesLibrary) {
  const auto& a = artifacts();
  const vsa::Model reloaded =
      vsa::ModelIo::from_bytes(vsa::ModelIo::to_bytes(a.model));
  ASSERT_EQ(reloaded, a.model);
}

TEST(CrossArtifactTest, CompiledFirmwareMatchesLibrary) {
  const auto& a = artifacts();
  hw::CEmitterOptions opts;
  opts.prefix = "xart";
  const hw::CEmitter emitter(a.model, opts);
  const std::string dir = ::testing::TempDir();
  emitter.write_files(dir, true);

  const std::string exe = dir + "/xart_demo";
  const std::string cmd = "cc -std=c99 -O1 -I" + dir + " " + dir +
                          "/xart_model.c " + dir + "/xart_main.c -o " +
                          exe + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buf[256];
  std::string compiler_output;
  while (fgets(buf, sizeof buf, pipe)) compiler_output += buf;
  ASSERT_EQ(pclose(pipe), 0) << compiler_output;

  for (std::size_t i = 0; i < 8; ++i) {
    const auto& values = a.data.test.values(i);
    std::ostringstream run;
    run << exe;
    for (const auto v : values) run << ' ' << v;
    FILE* out = popen(run.str().c_str(), "r");
    ASSERT_NE(out, nullptr);
    std::string output;
    while (fgets(buf, sizeof buf, out)) output += buf;
    ASSERT_EQ(pclose(out), 0);
    std::istringstream is(output);
    std::string word;
    int label = -1;
    is >> word >> label;
    EXPECT_EQ(label, a.model.predict(values).label) << "sample " << i;
  }
  std::remove((dir + "/xart_model.h").c_str());
  std::remove((dir + "/xart_model.c").c_str());
  std::remove((dir + "/xart_main.c").c_str());
  std::remove(exe.c_str());
}

TEST(CrossArtifactTest, VerilogArtifactIsStructurallySoundAndPinned) {
  const auto& a = artifacts();
  const hw::VerilogGenerator gen(a.model);
  EXPECT_TRUE(hw::verilog_structural_problems(gen.emit_all()).empty());
  const auto& values = a.data.test.values(0);
  const std::string tb = gen.testbench(values);
  const int expected = a.model.predict(values).label;
  EXPECT_NE(tb.find("expected=" + std::to_string(expected)),
            std::string::npos);
}

}  // namespace
}  // namespace univsa
