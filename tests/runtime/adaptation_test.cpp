// Online-adaptation layer: DriftDetector triggers, TrafficReservoir
// sampling, and the AdaptationDriver's detect -> retrain -> hot-swap
// loop against a live ModelRegistry.
#include "univsa/runtime/adaptation.h"

#include <gtest/gtest.h>

#include <vector>

#include "univsa/common/rng.h"
#include "univsa/runtime/backend.h"
#include "univsa/runtime/registry.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig config;
  config.W = 3;
  config.L = 5;
  config.C = 2;
  config.M = 8;
  config.D_H = 4;
  config.D_L = 2;
  config.D_K = 3;
  config.O = 6;
  config.Theta = 2;
  config.validate();
  return config;
}

DriftDetectorOptions tiny_detector() {
  DriftDetectorOptions options;
  options.baseline_window = 10;
  options.recent_window = 5;
  options.accuracy_drop = 0.3;
  options.margin_fraction = 0.5;
  return options;
}

TEST(DriftDetector, NoTriggerBeforeWindowsFill) {
  DriftDetector detector(tiny_detector());
  for (int i = 0; i < 10; ++i) {
    detector.observe(false, 0.0);  // terrible, but baseline not frozen
    EXPECT_FALSE(detector.drifted());
  }
  EXPECT_TRUE(detector.baseline_frozen());
  // Trailing window still empty.
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetector, AccuracyDropTriggers) {
  DriftDetector detector(tiny_detector());
  for (int i = 0; i < 10; ++i) detector.observe(true, 0.5);
  EXPECT_DOUBLE_EQ(detector.baseline_accuracy(), 1.0);
  for (int i = 0; i < 5; ++i) detector.observe(i % 2 == 0, 0.5);
  // Recent accuracy 3/5 = 0.6; drop 0.4 >= 0.3.
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetector, StableStreamDoesNotTrigger) {
  DriftDetector detector(tiny_detector());
  for (int i = 0; i < 40; ++i) detector.observe(i % 10 != 0, 0.5);
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetector, MarginErosionTriggersBeforeAccuracyFalls) {
  DriftDetector detector(tiny_detector());
  for (int i = 0; i < 10; ++i) detector.observe(true, 0.8);
  // Still always correct, but confidence collapsed.
  for (int i = 0; i < 5; ++i) detector.observe(true, 0.1);
  EXPECT_DOUBLE_EQ(detector.recent_accuracy(), 1.0);
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetector, RebaselineClearsTheTrigger) {
  DriftDetector detector(tiny_detector());
  for (int i = 0; i < 10; ++i) detector.observe(true, 0.5);
  for (int i = 0; i < 5; ++i) detector.observe(false, 0.5);
  ASSERT_TRUE(detector.drifted());
  detector.rebaseline();
  EXPECT_FALSE(detector.drifted());
  EXPECT_FALSE(detector.baseline_frozen());
  // The observation count survives (it is a lifetime counter).
  EXPECT_EQ(detector.observed(), 15u);
}

TEST(TrafficReservoir, HoldsEverythingBelowCapacity) {
  TrafficReservoir reservoir(8, 1);
  for (int i = 0; i < 5; ++i) {
    reservoir.add({static_cast<std::uint16_t>(i)}, i);
  }
  EXPECT_EQ(reservoir.size(), 5u);
  EXPECT_EQ(reservoir.seen(), 5u);
}

TEST(TrafficReservoir, StaysBoundedAndDeterministic) {
  TrafficReservoir a(4, 42);
  TrafficReservoir b(4, 42);
  for (int i = 0; i < 100; ++i) {
    a.add({static_cast<std::uint16_t>(i)}, i % 3);
    b.add({static_cast<std::uint16_t>(i)}, i % 3);
  }
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.seen(), 100u);
  const data::Dataset da = a.dataset(1, 1, 3, 256);
  const data::Dataset db = b.dataset(1, 1, 3, 256);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.values(i), db.values(i));
    EXPECT_EQ(da.label(i), db.label(i));
  }
}

TEST(TrafficReservoir, ClearRestartsSampling) {
  TrafficReservoir reservoir(4, 7);
  for (int i = 0; i < 50; ++i) {
    reservoir.add({static_cast<std::uint16_t>(i)}, 0);
  }
  reservoir.clear();
  EXPECT_EQ(reservoir.size(), 0u);
  EXPECT_EQ(reservoir.seen(), 0u);
  reservoir.add({9}, 1);
  EXPECT_EQ(reservoir.size(), 1u);
}

TEST(AdaptationDriver, UnknownTenantFailsAtConstruction) {
  auto registry = std::make_shared<ModelRegistry>();
  EXPECT_THROW(AdaptationDriver(registry, "nobody", {}), UnknownTenant);
}

TEST(AdaptationDriver, MarginIsNormalizedTopTwoGap) {
  vsa::Prediction p;
  p.scores = {10, 4, 7};
  // top 10, runner 7 -> (10-7)/(10+7+1).
  EXPECT_DOUBLE_EQ(AdaptationDriver::margin(p), 3.0 / 18.0);
  p.scores = {5};
  EXPECT_DOUBLE_EQ(AdaptationDriver::margin(p), 1.0);
}

TEST(AdaptationDriver, DriftTriggersRefreshAndHotSwap) {
  const vsa::ModelConfig config = small_config();
  Rng rng(3);
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("t", vsa::Model::random(config, rng));

  AdaptationOptions options;
  options.detector.baseline_window = 16;
  options.detector.recent_window = 8;
  options.detector.accuracy_drop = 0.3;
  options.reservoir_capacity = 32;
  options.min_refresh_samples = 8;
  options.refresh_cooldown = 4;
  AdaptationDriver driver(registry, "t", options);

  const auto sample = [&] {
    std::vector<std::uint16_t> s(config.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(config.M));
    }
    return s;
  };
  // Healthy phase: predictions always "correct", confident.
  vsa::Prediction good;
  good.label = 0;
  good.scores = {20, 2};
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(driver.observe(sample(), 0, good));
  }
  EXPECT_EQ(driver.drift_events(), 0u);

  // Drifted phase: always wrong. The reservoir restarts at the drift
  // event, so the refresh waits for min_refresh_samples drifted
  // samples, then publishes a new version.
  bool refreshed = false;
  vsa::Prediction bad;
  bad.label = 1;
  bad.scores = {9, 10};
  for (int i = 0; i < 40 && !refreshed; ++i) {
    refreshed = driver.observe(sample(), 0, bad);
  }
  EXPECT_TRUE(refreshed);
  EXPECT_EQ(driver.drift_events(), 1u);
  EXPECT_EQ(driver.refreshes(), 1u);
  EXPECT_EQ(registry->latest("t")->version(), 2u);
  // Refresh rebaselines the detector and unlatches drift.
  EXPECT_FALSE(driver.detector().baseline_frozen());
}

TEST(AdaptationDriver, RefreshNowPublishesFromReservoir) {
  const vsa::ModelConfig config = small_config();
  Rng rng(5);
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("t", vsa::Model::random(config, rng));
  AdaptationDriver driver(registry, "t", {});

  EXPECT_THROW(driver.refresh_now(), std::invalid_argument);

  std::vector<std::uint16_t> s(config.features(), 1);
  vsa::Prediction p;
  p.label = 0;
  p.scores = {5, 1};
  driver.observe(s, 0, p);
  EXPECT_EQ(driver.refresh_now(), 2u);
  EXPECT_EQ(driver.refreshes(), 1u);
  EXPECT_EQ(registry->latest("t")->version(), 2u);
}

}  // namespace
}  // namespace univsa::runtime
