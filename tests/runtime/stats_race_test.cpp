// Regression suite for the stats consistency invariant: telemetry is
// recorded BEFORE a request's promise is fulfilled, so by the time any
// caller's future.get() returns, stats() already accounts for that
// request. Run under TSan in CI (see .github/workflows/ci.yml) — the
// assertions here catch ordering regressions, TSan catches the data
// races that usually cause them.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "univsa/runtime/server.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

TEST(StatsRaceTest, CompletedNeverLagsResolvedFutures) {
  Rng rng(31);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 48, rng);

  ServerOptions options;
  options.workers = 3;
  options.max_batch = 4;
  options.max_delay_us = 50;
  Server server(m, options);

  // `observed` counts futures whose get() has returned. The invariant:
  // a snapshot of `observed` taken BEFORE stats() is a lower bound on
  // stats().completed — the server records completion before fulfilling
  // the promise, so stats can run ahead of observers but never behind.
  std::atomic<std::uint64_t> observed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t round = 0; round < 8; ++round) {
        for (std::size_t i = t; i < samples.size(); i += 4) {
          server.submit(samples[i]).get();
          observed.fetch_add(1, std::memory_order_seq_cst);
        }
      }
    });
  }

  std::thread checker([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t lower_bound =
          observed.load(std::memory_order_seq_cst);
      const ServerStats stats = server.stats();
      ASSERT_GE(stats.completed, lower_bound);
      // submitted is bumped at admission, before completion is possible.
      ASSERT_GE(stats.submitted, stats.completed);
      std::this_thread::yield();
    }
  });

  for (auto& t : submitters) t.join();
  done.store(true);
  checker.join();
  server.shutdown();

  const ServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.completed, observed.load());
  EXPECT_EQ(final_stats.completed, final_stats.latency_ns.count);
}

TEST(StatsRaceTest, DeadlineRejectionsCountBeforeTheFutureResolves) {
  Rng rng(32);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 16, rng);

  ServerOptions options;
  options.workers = 1;
  options.max_batch = 4;
  options.max_delay_us = 0;
  Server server(m, options);

  // Race many tiny-deadline requests against the worker. Whenever a
  // future delivers DeadlineExceeded, the deadline_rejected counter must
  // already include it (checked immediately after the catch).
  std::uint64_t seen_rejections = 0;
  for (std::size_t round = 0; round < 30; ++round) {
    std::vector<std::future<vsa::Prediction>> futures;
    SubmitOptions tiny;
    tiny.deadline_us = 1;
    for (const auto& s : samples) futures.push_back(server.submit(s, tiny));
    for (auto& f : futures) {
      try {
        f.get();
      } catch (const DeadlineExceeded&) {
        ++seen_rejections;
        ASSERT_GE(server.stats().deadline_rejected, seen_rejections);
      }
    }
  }
  server.shutdown();
  EXPECT_EQ(server.stats().deadline_rejected, seen_rejections);
}

TEST(StatsRaceTest, ConcurrentStatsReadersAreConsistentDuringDrain) {
  Rng rng(33);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 64, rng);

  ServerOptions options;
  options.workers = 2;
  options.max_batch = 8;
  options.max_delay_us = 500;
  Server server(m, options);

  std::vector<std::future<vsa::Prediction>> futures;
  for (const auto& s : samples) futures.push_back(server.submit(s));

  // Hammer stats()/health()/queue_depth() from two threads while the
  // server drains — TSan validates the locking, the assertions validate
  // monotonic consistency.
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_completed = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const ServerStats stats = server.stats();
        ASSERT_GE(stats.completed, last_completed);
        ASSERT_LE(stats.completed, stats.submitted);
        ASSERT_LE(stats.queue_depth, options.queue_capacity);
        last_completed = stats.completed;
        (void)server.health();
        (void)server.queue_depth();
      }
    });
  }
  server.shutdown();
  done.store(true);
  for (auto& t : readers) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(server.stats().completed, samples.size());
}

}  // namespace
}  // namespace univsa::runtime
