// Micro-batching Server semantics:
//   - per-request results are bit-identical to a direct backend call for
//     any (max_batch, max_delay) policy, worker count, and number of
//     concurrent submitter threads (batching invariance),
//   - the bounded queue backpressures: try_submit reports kOverloaded
//     while full and submit() blocks until space frees,
//   - shutdown drains everything already accepted and refuses new work.
#include "univsa/runtime/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "univsa/runtime/registry.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

/// A controllable backend: blocks inside predict_batch until released.
/// Lets the tests pin the worker mid-dispatch to fill the queue
/// deterministically.
class GatedBackend : public ReferenceBackend {
 public:
  explicit GatedBackend(const vsa::Model& m) : ReferenceBackend(m) {}

  std::string name() const override { return "test-gated"; }

  void predict_batch(const std::vector<std::vector<std::uint16_t>>& samples,
                     std::vector<vsa::Prediction>& out,
                     bool parallel = true) override {
    {
      std::unique_lock<std::mutex> lock(gate_mutex());
      ++entered();
      entered_cv().notify_all();
      gate_cv().wait(lock, [] { return open(); });
    }
    ReferenceBackend::predict_batch(samples, out, parallel);
  }

  // Shared across all instances so the test controls every worker.
  static std::mutex& gate_mutex() {
    static std::mutex m;
    return m;
  }
  static std::condition_variable& gate_cv() {
    static std::condition_variable cv;
    return cv;
  }
  static std::condition_variable& entered_cv() {
    static std::condition_variable cv;
    return cv;
  }
  static bool& open() {
    static bool o = false;
    return o;
  }
  static int& entered() {
    static int n = 0;
    return n;
  }
  static void reset() {
    std::lock_guard<std::mutex> lock(gate_mutex());
    open() = false;
    entered() = 0;
  }
  static void release() {
    {
      std::lock_guard<std::mutex> lock(gate_mutex());
      open() = true;
    }
    gate_cv().notify_all();
  }
  static void wait_for_dispatch() {
    std::unique_lock<std::mutex> lock(gate_mutex());
    entered_cv().wait(lock, [] { return entered() > 0; });
  }
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_backend("test-gated", [](const vsa::Model& m) {
      return std::make_unique<GatedBackend>(m);
    });
    GatedBackend::reset();
  }
};

TEST_F(ServerTest, ResultsIndependentOfBatchPolicyAndThreadCount) {
  Rng rng(91);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 60, rng);

  std::vector<vsa::Prediction> expected;
  make_backend("reference", m)->predict_batch(samples, expected);

  struct Policy {
    std::string backend;
    std::size_t workers, max_batch, max_delay_us;
  };
  const std::vector<Policy> policies = {
      {"packed", 1, 1, 0},     // no coalescing at all
      {"packed", 1, 8, 200},   // micro-batches
      {"packed", 3, 16, 500},  // several workers racing for batches
      {"packed", 4, 64, 0},    // batch bigger than any burst
      {"reference", 2, 7, 100},
      {"hwsim", 2, 5, 50},
  };

  for (const Policy& policy : policies) {
    ServerOptions options;
    options.backend = policy.backend;
    options.workers = policy.workers;
    options.max_batch = policy.max_batch;
    options.max_delay_us = policy.max_delay_us;
    Server server(m, options);
    EXPECT_EQ(server.worker_count(), policy.workers);

    std::vector<std::future<vsa::Prediction>> futures;
    futures.reserve(samples.size());
    for (const auto& s : samples) futures.push_back(server.submit(s));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const vsa::Prediction got = futures[i].get();
      EXPECT_EQ(got.label, expected[i].label)
          << policy.backend << " w=" << policy.workers
          << " b=" << policy.max_batch << " sample " << i;
      EXPECT_EQ(got.scores, expected[i].scores)
          << policy.backend << " w=" << policy.workers
          << " b=" << policy.max_batch << " sample " << i;
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, samples.size());
    server.shutdown();
    EXPECT_EQ(server.stats().completed, samples.size());
  }
}

TEST_F(ServerTest, ConcurrentSubmittersGetTheirOwnResults) {
  Rng rng(92);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 25;
  const auto samples = random_samples(c, kThreads * kPerThread, rng);

  std::vector<vsa::Prediction> expected;
  make_backend("reference", m)->predict_batch(samples, expected);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    ServerOptions options;
    options.workers = workers;
    options.max_batch = 8;
    options.max_delay_us = 200;
    Server server(m, options);

    std::atomic<std::size_t> mismatches{0};
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::size_t index = t * kPerThread + i;
          const vsa::Prediction got =
              server.submit(samples[index]).get();
          if (got.label != expected[index].label ||
              got.scores != expected[index].scores) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : submitters) t.join();
    EXPECT_EQ(mismatches.load(), 0u) << "workers=" << workers;

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, samples.size());
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LE(stats.max_batch_observed, options.max_batch);

    // Histogram-backed stats agree with the scalar counters: one batch-
    // size sample per dispatch, one wait/latency sample per request.
    EXPECT_EQ(stats.queue_depth, 0u);  // everything drained
    EXPECT_EQ(stats.batch_sizes.count, stats.batches);
    EXPECT_EQ(stats.queue_wait_ns.count, stats.submitted);
    EXPECT_EQ(stats.latency_ns.count, stats.submitted);
    EXPECT_EQ(stats.service_ns.count, stats.batches);
    EXPECT_EQ(stats.batch_sizes.max, stats.max_batch_observed);
    EXPECT_GT(stats.latency_ns.percentile(0.99), 0u);
    // End-to-end latency dominates queue wait for every request.
    EXPECT_GE(stats.latency_ns.sum, stats.queue_wait_ns.sum);
  }
}

TEST_F(ServerTest, TrySubmitReportsOverloadWhileQueueIsFull) {
  Rng rng(93);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 8, rng);

  ServerOptions options;
  options.backend = "test-gated";
  options.workers = 1;
  options.max_batch = 1;
  options.max_delay_us = 0;
  options.queue_capacity = 2;
  Server server(m, options);

  // First request gets picked up by the worker, which then blocks inside
  // the gated backend; the queue itself is empty again.
  auto inflight = server.submit(samples[0]);
  GatedBackend::wait_for_dispatch();

  // Fill the bounded queue, then overflow it.
  std::future<vsa::Prediction> q1, q2, overflow;
  ASSERT_EQ(server.try_submit(samples[1], &q1), SubmitStatus::kOk);
  ASSERT_EQ(server.try_submit(samples[2], &q2), SubmitStatus::kOk);
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_EQ(server.try_submit(samples[3], &overflow),
            SubmitStatus::kOverloaded);
  EXPECT_EQ(server.stats().rejected, 1u);

  // A blocking submit must park until the worker frees queue space.
  std::atomic<bool> blocked_done{false};
  std::thread blocked([&] {
    auto f = server.submit(samples[4]);
    f.wait();
    blocked_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_done.load());

  GatedBackend::release();
  blocked.join();
  EXPECT_TRUE(blocked_done.load());

  // Everything accepted eventually resolves to the right prediction.
  EXPECT_EQ(inflight.get().label, m.predict_reference(samples[0]).label);
  EXPECT_EQ(q1.get().scores, m.predict_reference(samples[1]).scores);
  EXPECT_EQ(q2.get().scores, m.predict_reference(samples[2]).scores);
  server.shutdown();
}

TEST_F(ServerTest, ShutdownDrainsAcceptedRequestsAndRefusesNewOnes) {
  Rng rng(94);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 40, rng);

  std::vector<vsa::Prediction> expected;
  make_backend("reference", m)->predict_batch(samples, expected);

  ServerOptions options;
  options.workers = 2;
  options.max_batch = 4;
  options.max_delay_us = 1000;  // long enough that draining must cut in
  Server server(m, options);

  std::vector<std::future<vsa::Prediction>> futures;
  for (const auto& s : samples) futures.push_back(server.submit(s));
  server.shutdown();  // drain-on-shutdown: all 40 must still be served
  EXPECT_FALSE(server.accepting());

  for (std::size_t i = 0; i < samples.size(); ++i) {
    ASSERT_TRUE(futures[i].valid());
    const vsa::Prediction got = futures[i].get();
    EXPECT_EQ(got.label, expected[i].label) << "sample " << i;
    EXPECT_EQ(got.scores, expected[i].scores) << "sample " << i;
  }
  EXPECT_EQ(server.stats().completed, samples.size());
  EXPECT_EQ(server.queue_depth(), 0u);

  // Post-shutdown submissions are refused on both entry points.
  EXPECT_THROW(server.submit(samples[0]), std::runtime_error);
  std::future<vsa::Prediction> unused;
  EXPECT_EQ(server.try_submit(samples[0], &unused),
            SubmitStatus::kShutdown);
  // Idempotent from any thread.
  server.shutdown();
}

TEST_F(ServerTest, BackendExceptionPropagatesThroughTheFuture) {
  Rng rng(95);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);

  Server server(m, {});
  // Wrong feature count: the backend throws inside the worker; the
  // future must carry the exception instead of hanging the caller.
  auto f = server.submit(std::vector<std::uint16_t>(3, 0));
  EXPECT_THROW(f.get(), std::exception);
  server.shutdown();
}

}  // namespace
}  // namespace univsa::runtime
