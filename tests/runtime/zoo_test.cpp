// Multi-tenant serving semantics: per-tenant routing, QoS policies
// (priority clamp + admission quota), per-tenant stats, and equivalence
// of the legacy single-model constructor with the registry path.
//
// Heterogeneous-geometry coalescing: two tenants with *different* model
// configs are served through one Server. Any batch that mixed the two
// snapshots would feed one model samples of the wrong feature count —
// bit-exact per-tenant answers prove batches never mix models.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/runtime/backend.h"
#include "univsa/runtime/model_registry.h"
#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig config_a() {
  vsa::ModelConfig config;
  config.W = 3;
  config.L = 5;
  config.C = 2;
  config.M = 8;
  config.D_H = 4;
  config.D_L = 2;
  config.D_K = 3;
  config.O = 6;
  config.Theta = 2;
  config.validate();
  return config;
}

vsa::ModelConfig config_b() {
  vsa::ModelConfig config;
  config.W = 4;
  config.L = 7;
  config.C = 3;
  config.M = 16;
  config.D_H = 4;
  config.D_L = 2;
  config.D_K = 3;
  config.O = 8;
  config.Theta = 1;
  config.validate();
  return config;
}

vsa::Model make_model(const vsa::ModelConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  return vsa::Model::random(config, rng);
}

std::vector<std::vector<std::uint16_t>> make_samples(
    const vsa::ModelConfig& config, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint16_t>> samples(count);
  for (auto& s : samples) {
    s.resize(config.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(config.M));
    }
  }
  return samples;
}

bool same_prediction(const vsa::Prediction& a, const vsa::Prediction& b) {
  return a.label == b.label && a.scores == b.scores;
}

TEST(ZooServer, HeterogeneousTenantsServeBitExact) {
  const vsa::Model model_1 = make_model(config_a(), 11);
  const vsa::Model model_2 = make_model(config_b(), 22);
  const auto samples_1 = make_samples(config_a(), 12, 5);
  const auto samples_2 = make_samples(config_b(), 12, 6);

  std::vector<vsa::Prediction> expected_1, expected_2;
  make_backend("reference", model_1)->predict_batch(samples_1, expected_1);
  make_backend("reference", model_2)->predict_batch(samples_2, expected_2);

  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("a", model_1);
  registry->publish("b", model_2);

  ServerOptions options;
  options.workers = 2;
  options.max_batch = 8;
  options.max_delay_us = 50;
  Server server(registry, options);

  // Interleave submissions so under-full batches would happily mix
  // tenants if the server allowed it.
  std::vector<std::future<vsa::Prediction>> futures_1, futures_2;
  for (std::size_t i = 0; i < samples_1.size(); ++i) {
    SubmitOptions so;
    so.tenant = "a";
    futures_1.push_back(server.submit(samples_1[i], so));
    so.tenant = "b";
    futures_2.push_back(server.submit(samples_2[i], so));
  }
  for (std::size_t i = 0; i < futures_1.size(); ++i) {
    EXPECT_TRUE(same_prediction(futures_1[i].get(), expected_1[i]));
    EXPECT_TRUE(same_prediction(futures_2[i].get(), expected_2[i]));
  }

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.tenants.count("a"), 1u);
  ASSERT_EQ(stats.tenants.count("b"), 1u);
  EXPECT_EQ(stats.tenants.at("a").completed, samples_1.size());
  EXPECT_EQ(stats.tenants.at("b").completed, samples_2.size());
  EXPECT_EQ(stats.completed, samples_1.size() + samples_2.size());
}

TEST(ZooServer, UnknownTenantRefused) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("known", make_model(config_a(), 1));
  ServerOptions options;
  options.workers = 1;
  Server server(registry, options);

  const auto samples = make_samples(config_a(), 1, 2);
  SubmitOptions so;
  so.tenant = "nobody";
  EXPECT_THROW(server.submit(samples[0], so), UnknownTenant);

  std::future<vsa::Prediction> out;
  EXPECT_EQ(server.try_submit(samples[0], so, &out),
            SubmitStatus::kUnknownTenant);
  EXPECT_EQ(server.stats().unknown_tenant, 2u);

  // The default tenant is also unknown here ("known" != "default").
  EXPECT_THROW(server.submit(samples[0]), UnknownTenant);
}

TEST(ZooServer, TenantQuotaShedsAndCounts) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("capped", make_model(config_a(), 3));
  ServerOptions options;
  options.workers = 1;
  options.max_batch = 4;
  options.max_delay_us = 0;
  options.queue_capacity = 64;
  options.tenant_policies["capped"] = {Priority::kHigh, 2};
  Server server(registry, options);

  // Stall dispatch long enough to pile submissions up: submit from this
  // thread faster than one worker can drain a 2-deep quota. Shedding is
  // timing-dependent, so loop until we see at least one quota refusal
  // (a generous cap: under heavy parallel-test load the worker can keep
  // pace for surprisingly long stretches).
  const auto samples = make_samples(config_a(), 1, 4);
  SubmitOptions so;
  so.tenant = "capped";
  std::vector<std::future<vsa::Prediction>> futures;
  std::size_t shed = 0;
  for (std::size_t i = 0; i < 20000 && shed == 0; ++i) {
    std::future<vsa::Prediction> out;
    const SubmitStatus status = server.try_submit(samples[0], so, &out);
    if (status == SubmitStatus::kOk) {
      futures.push_back(std::move(out));
    } else {
      ASSERT_EQ(status, SubmitStatus::kShed);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  for (auto& f : futures) (void)f.get();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.tenants.at("capped").shed, shed);
  EXPECT_EQ(stats.tenants.at("capped").completed, futures.size());
  EXPECT_EQ(stats.shed, shed);
}

TEST(ZooServer, PriorityClampKeepsTenantSheddable) {
  // A tenant clamped to kLow is shed at the watermark even when its
  // requests ask for kHigh.
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("batch", make_model(config_a(), 5));
  ServerOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.max_delay_us = 0;
  options.queue_capacity = 8;
  options.shed_watermark = 2;
  options.tenant_policies["batch"] = {Priority::kLow, 0};
  Server server(registry, options);

  const auto samples = make_samples(config_a(), 1, 6);
  SubmitOptions so;
  so.tenant = "batch";
  so.priority = Priority::kHigh;  // clamped to kLow by policy
  std::vector<std::future<vsa::Prediction>> futures;
  std::size_t shed = 0;
  for (std::size_t i = 0; i < 20000 && shed == 0; ++i) {
    std::future<vsa::Prediction> out;
    const SubmitStatus status = server.try_submit(samples[0], so, &out);
    if (status == SubmitStatus::kOk) {
      futures.push_back(std::move(out));
    } else {
      ASSERT_EQ(status, SubmitStatus::kShed);
      ++shed;
    }
  }
  // Un-clamped kHigh work is never watermark-shed, so any shed here
  // proves the clamp applied.
  EXPECT_GT(shed, 0u);
  for (auto& f : futures) (void)f.get();
  EXPECT_EQ(server.stats().tenants.at("batch").shed, shed);
}

TEST(ZooServer, LegacyConstructorMatchesRegistryPath) {
  const vsa::Model model = make_model(config_a(), 9);
  const auto samples = make_samples(config_a(), 8, 10);
  std::vector<vsa::Prediction> expected;
  make_backend("reference", model)->predict_batch(samples, expected);

  ServerOptions options;
  options.workers = 1;
  Server server(model, options);
  // The legacy ctor publishes under options.default_tenant@1.
  EXPECT_TRUE(server.registry()->has_tenant("default"));
  EXPECT_EQ(server.registry()->latest("default")->version(), 1u);

  for (std::size_t i = 0; i < samples.size(); ++i) {
    // No SubmitOptions: routes to the default tenant.
    EXPECT_TRUE(same_prediction(server.submit(samples[i]).get(),
                                expected[i]));
  }
  EXPECT_EQ(server.stats().tenants.at("default").completed,
            samples.size());
}

TEST(ZooServer, PinnedSubmitKeepsServingOldVersionAfterSwap) {
  // SubmitOptions::tenant resolves at submit time; a request submitted
  // before a publish serves on the old snapshot, one submitted after
  // serves on the new one.
  const vsa::Model m1 = make_model(config_a(), 31);
  const vsa::Model m2 = make_model(config_a(), 32);
  const auto samples = make_samples(config_a(), 4, 33);
  std::vector<vsa::Prediction> expected1, expected2;
  make_backend("reference", m1)->predict_batch(samples, expected1);
  make_backend("reference", m2)->predict_batch(samples, expected2);

  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("t", m1);
  ServerOptions options;
  options.workers = 1;
  Server server(registry, options);
  SubmitOptions so;
  so.tenant = "t";

  EXPECT_TRUE(same_prediction(server.submit(samples[0], so).get(),
                              expected1[0]));
  registry->publish("t", m2);
  EXPECT_TRUE(same_prediction(server.submit(samples[0], so).get(),
                              expected2[0]));
}

}  // namespace
}  // namespace univsa::runtime
