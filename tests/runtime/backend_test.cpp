// Backend adapters and the string-keyed registry: every registered
// backend must serve bit-identical Predictions to the reference scalar
// pipeline, the registry must resolve/extend/reject names, and the
// hw-sim backend must attach cycle counts that agree with the closed-form
// timing model.
#include "univsa/runtime/backend.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "univsa/hw/timing_model.h"
#include "univsa/runtime/registry.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::uint16_t> random_sample(const vsa::ModelConfig& c,
                                         Rng& rng) {
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

data::Dataset random_dataset(const vsa::ModelConfig& c, std::size_t n,
                             Rng& rng) {
  data::Dataset ds(c.W, c.L, c.C, c.M);
  for (std::size_t i = 0; i < n; ++i) {
    ds.add(random_sample(c, rng),
           static_cast<int>(rng.uniform_index(c.C)));
  }
  return ds;
}

TEST(BackendRegistryTest, BuiltinsAreRegistered) {
  EXPECT_TRUE(has_backend("reference"));
  EXPECT_TRUE(has_backend("packed"));
  EXPECT_TRUE(has_backend("hwsim"));
  EXPECT_TRUE(has_backend(default_backend()));
  const auto names = backend_names();
  EXPECT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistryTest, UnknownNameThrowsWithListing) {
  Rng rng(3);
  const vsa::Model m = vsa::Model::random(small_config(), rng);
  try {
    make_backend("no-such-backend", m);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    EXPECT_NE(what.find("packed"), std::string::npos);
  }
}

TEST(BackendRegistryTest, CustomBackendCanBeRegisteredAndServed) {
  register_backend("test-reference-alias", [](const vsa::Model& m) {
    return std::make_unique<ReferenceBackend>(m);
  });
  ASSERT_TRUE(has_backend("test-reference-alias"));

  Rng rng(4);
  const vsa::Model m = vsa::Model::random(small_config(), rng);
  auto backend = make_backend("test-reference-alias", m);
  const auto values = random_sample(small_config(), rng);
  const vsa::Prediction got = backend->predict(values);
  const vsa::Prediction want = m.predict_reference(values);
  EXPECT_EQ(got.label, want.label);
  EXPECT_EQ(got.scores, want.scores);
}

TEST(BackendTest, EveryBuiltinMatchesReferenceBitExactly) {
  Rng rng(11);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);

  std::vector<std::vector<std::uint16_t>> samples;
  for (int i = 0; i < 16; ++i) samples.push_back(random_sample(c, rng));

  for (const std::string& name :
       {std::string("reference"), std::string("packed"),
        std::string("hwsim")}) {
    auto backend = make_backend(name, m);
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(&backend->model(), &m);

    std::vector<vsa::Prediction> batch;
    backend->predict_batch(samples, batch);
    ASSERT_EQ(batch.size(), samples.size()) << name;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const vsa::Prediction want = m.predict_reference(samples[i]);
      EXPECT_EQ(batch[i].label, want.label) << name << " sample " << i;
      EXPECT_EQ(batch[i].scores, want.scores) << name << " sample " << i;

      vsa::Prediction single;
      backend->predict_into(samples[i], single);
      EXPECT_EQ(single.label, want.label) << name << " sample " << i;
      EXPECT_EQ(single.scores, want.scores) << name << " sample " << i;
    }
  }
}

TEST(BackendTest, DatasetBatchAndAccuracyMatchReferenceLoop) {
  Rng rng(12);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const data::Dataset ds = random_dataset(c, 30, rng);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (m.predict_reference(ds.values(i)).label == ds.label(i)) ++correct;
  }
  const double expected =
      static_cast<double>(correct) / static_cast<double>(ds.size());

  for (const std::string& name : backend_names()) {
    if (name.rfind("test-", 0) == 0) continue;  // other tests' fixtures
    auto backend = make_backend(name, m);
    EXPECT_DOUBLE_EQ(backend->accuracy(ds), expected) << name;
    std::vector<vsa::Prediction> out;
    backend->predict_batch(ds, out);
    ASSERT_EQ(out.size(), ds.size()) << name;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(out[i].label, m.predict_reference(ds.values(i)).label)
          << name << " sample " << i;
    }
  }
}

TEST(BackendTest, PackedSerialAndParallelAgree) {
  Rng rng(13);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  std::vector<std::vector<std::uint16_t>> samples;
  for (int i = 0; i < 40; ++i) samples.push_back(random_sample(c, rng));

  PackedBackend backend(m);
  EXPECT_TRUE(backend.capabilities().native_batch);
  EXPECT_TRUE(backend.capabilities().parallel_batch);
  EXPECT_TRUE(backend.capabilities().zero_alloc);

  std::vector<vsa::Prediction> serial;
  std::vector<vsa::Prediction> parallel;
  backend.predict_batch(samples, serial, /*parallel=*/false);
  backend.predict_batch(samples, parallel, /*parallel=*/true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].scores, parallel[i].scores);
  }
}

TEST(BackendTest, HwSimAttachesCycleCountsMatchingTimingModel) {
  Rng rng(14);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  HwSimBackend backend(m);
  EXPECT_TRUE(backend.capabilities().counts_cycles);
  EXPECT_EQ(backend.total_cycles(), 0u);

  const std::size_t n = 7;
  std::vector<std::vector<std::uint16_t>> samples;
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(random_sample(c, rng));
  }
  std::vector<vsa::Prediction> out;
  backend.predict_batch(samples, out);

  // Counted cycles per sample are input-independent and equal the
  // closed-form stage model (the functional sim's own invariant).
  const std::size_t per_sample = hw::stage_cycles(c).total();
  EXPECT_EQ(backend.samples_processed(), n);
  EXPECT_EQ(backend.total_cycles(),
            static_cast<std::uint64_t>(per_sample) * n);
  EXPECT_GT(backend.modelled_seconds(), 0.0);
}

TEST(BackendTest, RejectsGeometryMismatchedDataset) {
  Rng rng(15);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  data::Dataset wrong(c.W + 1, c.L, c.C, c.M);
  wrong.add(std::vector<std::uint16_t>((c.W + 1) * c.L, 0), 0);
  for (const std::string& name :
       {std::string("reference"), std::string("packed"),
        std::string("hwsim")}) {
    auto backend = make_backend(name, m);
    std::vector<vsa::Prediction> out;
    EXPECT_THROW(backend->predict_batch(wrong, out),
                 std::invalid_argument)
        << name;
  }
}

}  // namespace
}  // namespace univsa::runtime
