// runtime::verify_parity — the cross-implementation property check:
// reference, packed, and hw-sim backends must produce bit-identical
// Predictions on synthetic data and on the ISOLET-shaped configuration
// (the paper's largest task geometry), and the harness must actually
// catch a backend that diverges.
#include "univsa/runtime/parity.h"

#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"
#include "univsa/data/synthetic.h"
#include "univsa/runtime/registry.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {
namespace {

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

TEST(VerifyParityTest, AllBuiltinsBitIdenticalOnSmallConfig) {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  Rng rng(71);
  const vsa::Model m = vsa::Model::random(c, rng);

  const ParityReport report = verify_parity(
      m, random_samples(c, 20, rng), {"reference", "packed", "hwsim"});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.baseline, "reference");
  EXPECT_EQ(report.samples, 20u);
  EXPECT_EQ(report.compared, 40u);  // 2 non-baseline backends × 20
  EXPECT_NE(report.summary().find("bit-identical"), std::string::npos);

  // Per-backend wall time rides along: one positive entry per backend,
  // surfaced in the summary.
  ASSERT_EQ(report.backend_seconds.size(), 3u);
  for (const double s : report.backend_seconds) EXPECT_GT(s, 0.0);
  EXPECT_NE(report.summary().find("reference: "), std::string::npos);
  EXPECT_NE(report.summary().find(" ms"), std::string::npos);
}

TEST(VerifyParityTest, IsoletShapedConfigStaysBitIdentical) {
  // The acceptance-bar check: the paper's largest geometry, all three
  // built-in backends, random model + random levels.
  const vsa::ModelConfig c = data::find_benchmark("ISOLET").config;
  Rng rng(72);
  const vsa::Model m = vsa::Model::random(c, rng);
  const ParityReport report = verify_parity(
      m, random_samples(c, 8, rng), {"reference", "packed", "hwsim"});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// The ISA-backend acceptance bar: every registered packed-* backend
// (one per SIMD ISA the build + CPU support, packed-scalar always) must
// be bit-identical to the reference pipeline on a real dataset config.
TEST(VerifyParityTest, EveryPackedIsaBackendMatchesReferenceOnIsolet) {
  std::vector<std::string> backends = {"reference", "packed"};
  std::size_t isa_backends = 0;
  for (const std::string& name : backend_names()) {
    if (name.rfind("packed-", 0) == 0) {
      backends.push_back(name);
      ++isa_backends;
    }
  }
  ASSERT_GE(isa_backends, 1u);  // packed-scalar is unconditional

  const vsa::ModelConfig c = data::find_benchmark("ISOLET").config;
  Rng rng(76);
  const vsa::Model m = vsa::Model::random(c, rng);
  const ParityReport report =
      verify_parity(m, random_samples(c, 8, rng), backends);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.baseline, "reference");
  EXPECT_EQ(report.compared, (backends.size() - 1) * 8u);
}

TEST(VerifyParityTest, SyntheticDatasetOverloadCoversAllRegistered) {
  const auto& bench = data::find_benchmark("HAR");
  data::SyntheticSpec spec = bench.spec;
  spec.train_count = 24;
  spec.test_count = 12;
  const data::SyntheticResult ds = data::generate(spec);

  Rng rng(73);
  const vsa::Model m = vsa::Model::random(bench.config, rng);
  // Every registered backend must agree (minus this binary's deliberate
  // test fixtures, which other cases register to exercise divergence).
  std::vector<std::string> backends;
  for (const std::string& name : backend_names()) {
    if (name.rfind("test-", 0) != 0) backends.push_back(name);
  }
  const ParityReport report = verify_parity(m, ds.test, backends);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.samples, ds.test.size());
  EXPECT_GE(report.backends.size(), 3u);
}

// A backend that deliberately corrupts the winning label — the harness
// must flag it and name it in the summary.
class LyingBackend : public ReferenceBackend {
 public:
  using ReferenceBackend::ReferenceBackend;
  std::string name() const override { return "test-lying"; }
  void predict_into(const std::vector<std::uint16_t>& values,
                    vsa::Prediction& out) override {
    ReferenceBackend::predict_into(values, out);
    out.label = (out.label + 1) % static_cast<int>(config().C);
  }
};

TEST(VerifyParityTest, DetectsDivergingBackend) {
  register_backend("test-lying", [](const vsa::Model& m) {
    return std::make_unique<LyingBackend>(m);
  });

  vsa::ModelConfig c;
  c.W = 3;
  c.L = 5;
  c.C = 2;
  c.M = 8;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 4;
  c.Theta = 1;
  Rng rng(74);
  const vsa::Model m = vsa::Model::random(c, rng);

  const ParityReport report = verify_parity(
      m, random_samples(c, 6, rng), {"reference", "packed", "test-lying"});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.mismatch_count, 6u);  // every lying sample
  ASSERT_FALSE(report.mismatches.empty());
  EXPECT_EQ(report.mismatches.front().backend, "test-lying");
  EXPECT_NE(report.summary().find("test-lying"), std::string::npos);
  EXPECT_NE(report.summary().find("MISMATCH"), std::string::npos);
}

TEST(VerifyParityTest, RejectsEmptyInputsAndUnknownBackends) {
  vsa::ModelConfig c;
  c.W = 3;
  c.L = 4;
  c.C = 2;
  c.M = 8;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 4;
  c.Theta = 1;
  Rng rng(75);
  const vsa::Model m = vsa::Model::random(c, rng);
  EXPECT_THROW(verify_parity(m, std::vector<std::vector<std::uint16_t>>{}),
               std::invalid_argument);
  EXPECT_THROW(
      verify_parity(m, random_samples(c, 2, rng), {"no-such-backend"}),
      std::invalid_argument);
}

}  // namespace
}  // namespace univsa::runtime
