// Robustness-layer semantics of runtime::Server:
//   - a request whose deadline passes while queued is rejected with
//     DeadlineExceeded and never consumes a batch slot,
//   - admission control sheds kLow work at the watermark and evicts the
//     youngest queued kLow request when a higher class arrives at full
//     capacity,
//   - bounded retry-with-backoff on the blocking path throws
//     ServerOverloaded once exhausted (and succeeds when space frees in
//     time),
//   - workers drain the highest priority class first,
//   - health transitions kServing -> kDegraded -> kServing with
//     hysteresis, and kDraining on shutdown,
//   - drain-on-shutdown keeps the exactly-once contract: every accepted
//     request resolves exactly once (result or refusal), none lost.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

/// Same controllable backend as server_test.cpp: blocks inside
/// predict_batch until released, so tests can pin workers mid-dispatch
/// and fill the queue deterministically.
class GatedBackend : public ReferenceBackend {
 public:
  explicit GatedBackend(const vsa::Model& m) : ReferenceBackend(m) {}

  std::string name() const override { return "test-gated-robust"; }

  void predict_batch(const std::vector<std::vector<std::uint16_t>>& samples,
                     std::vector<vsa::Prediction>& out,
                     bool parallel = true) override {
    {
      std::unique_lock<std::mutex> lock(gate_mutex());
      ++entered();
      entered_cv().notify_all();
      gate_cv().wait(lock, [] { return open(); });
    }
    ReferenceBackend::predict_batch(samples, out, parallel);
  }

  static std::mutex& gate_mutex() {
    static std::mutex m;
    return m;
  }
  static std::condition_variable& gate_cv() {
    static std::condition_variable cv;
    return cv;
  }
  static std::condition_variable& entered_cv() {
    static std::condition_variable cv;
    return cv;
  }
  static bool& open() {
    static bool o = false;
    return o;
  }
  static int& entered() {
    static int n = 0;
    return n;
  }
  static void reset() {
    std::lock_guard<std::mutex> lock(gate_mutex());
    open() = false;
    entered() = 0;
  }
  static void release() {
    {
      std::lock_guard<std::mutex> lock(gate_mutex());
      open() = true;
    }
    gate_cv().notify_all();
  }
  static void wait_for_dispatch() {
    std::unique_lock<std::mutex> lock(gate_mutex());
    entered_cv().wait(lock, [] { return entered() > 0; });
  }
};

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_backend("test-gated-robust", [](const vsa::Model& m) {
      return std::make_unique<GatedBackend>(m);
    });
    GatedBackend::reset();
    Rng rng(1234);
    config_ = small_config();
    model_ = vsa::Model::random(config_, rng);
    samples_ = random_samples(config_, 32, rng);
  }

  /// One worker pinned inside the gated backend: the queue state is then
  /// fully under test control.
  Server gated_server(std::size_t queue_capacity,
                      std::size_t shed_watermark = 0) {
    ServerOptions options;
    options.backend = "test-gated-robust";
    options.workers = 1;
    options.max_batch = 1;
    options.max_delay_us = 0;
    options.queue_capacity = queue_capacity;
    options.shed_watermark = shed_watermark;
    return Server(model_, options);
  }

  vsa::ModelConfig config_;
  vsa::Model model_;
  std::vector<std::vector<std::uint16_t>> samples_;
};

TEST_F(RobustnessTest, SubmitOptionsDefaultsPreserveClassicSemantics) {
  const SubmitOptions options;
  EXPECT_EQ(options.priority, Priority::kNormal);
  EXPECT_EQ(options.deadline_us, 0u);
  EXPECT_EQ(options.max_retries, 0u);
}

TEST_F(RobustnessTest, WatermarkDerivesToThreeQuartersOfCapacity) {
  ServerOptions options;
  options.queue_capacity = 32;
  Server server(model_, options);
  EXPECT_EQ(server.shed_watermark(), 24u);
  server.shutdown();

  options.queue_capacity = 1;  // derived watermark still >= 1
  Server tiny(model_, options);
  EXPECT_EQ(tiny.shed_watermark(), 1u);
  tiny.shutdown();

  options.queue_capacity = 8;
  options.shed_watermark = 5;  // explicit value wins
  Server explicit_mark(model_, options);
  EXPECT_EQ(explicit_mark.shed_watermark(), 5u);
  explicit_mark.shutdown();
}

TEST_F(RobustnessTest, ExpiredQueuedRequestIsRejectedNotServed) {
  Server server = gated_server(/*queue_capacity=*/8);

  // Pin the worker, then queue a request with a microscopic deadline and
  // one without. By the time the worker is released the first deadline
  // has long passed.
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();

  SubmitOptions doomed;
  doomed.deadline_us = 1;  // expires almost immediately
  auto expired = server.submit(samples_[1], doomed);
  auto alive = server.submit(samples_[2]);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  GatedBackend::release();
  EXPECT_THROW(expired.get(), DeadlineExceeded);
  // The live requests still produce correct results.
  EXPECT_EQ(pinned.get().scores,
            model_.predict_reference(samples_[0]).scores);
  EXPECT_EQ(alive.get().scores,
            model_.predict_reference(samples_[2]).scores);
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_rejected, 1u);
  // The expired request never reached a backend dispatch: only the two
  // live ones are counted as completed.
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(RobustnessTest, DeadlineCarriesStatusCode) {
  Server server = gated_server(/*queue_capacity=*/8);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();

  SubmitOptions doomed;
  doomed.deadline_us = 1;
  auto expired = server.submit(samples_[1], doomed);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  GatedBackend::release();

  try {
    expired.get();
    FAIL() << "expected DeadlineExceeded";
  } catch (const RequestRefused& refusal) {
    EXPECT_EQ(refusal.status(), SubmitStatus::kDeadlineExceeded);
  }
  pinned.get();
  server.shutdown();
}

TEST_F(RobustnessTest, LowPriorityShedsAtTheWatermark) {
  // capacity 4, watermark 2: once two requests sit queued, kLow work is
  // refused while kNormal is still admitted.
  Server server = gated_server(/*queue_capacity=*/4, /*shed_watermark=*/2);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();

  SubmitOptions low;
  low.priority = Priority::kLow;
  std::future<vsa::Prediction> f1, f2, refused, normal_ok;
  ASSERT_EQ(server.try_submit(samples_[1], low, &f1), SubmitStatus::kOk);
  ASSERT_EQ(server.try_submit(samples_[2], low, &f2), SubmitStatus::kOk);
  EXPECT_EQ(server.queue_depth(), 2u);

  // At the watermark: kLow is shed on both entry points...
  EXPECT_EQ(server.try_submit(samples_[3], low, &refused),
            SubmitStatus::kShed);
  EXPECT_THROW(server.submit(samples_[3], low), RequestShed);
  // ...while a default (kNormal) admission still succeeds.
  ASSERT_EQ(server.try_submit(samples_[4], {}, &normal_ok),
            SubmitStatus::kOk);

  GatedBackend::release();
  f1.get();
  f2.get();
  normal_ok.get();
  pinned.get();
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST_F(RobustnessTest, HighPriorityEvictsYoungestLowAtFullCapacity) {
  // capacity 3, watermark 3 (== capacity, so kLow fills the whole queue).
  Server server = gated_server(/*queue_capacity=*/3, /*shed_watermark=*/3);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();

  SubmitOptions low;
  low.priority = Priority::kLow;
  std::future<vsa::Prediction> oldest, middle, youngest;
  ASSERT_EQ(server.try_submit(samples_[1], low, &oldest), SubmitStatus::kOk);
  ASSERT_EQ(server.try_submit(samples_[2], low, &middle), SubmitStatus::kOk);
  ASSERT_EQ(server.try_submit(samples_[3], low, &youngest),
            SubmitStatus::kOk);
  EXPECT_EQ(server.queue_depth(), 3u);

  // Full queue: another kLow is refused outright (the watermark check
  // fires before the capacity check, so the refusal reads kShed)...
  std::future<vsa::Prediction> extra_low;
  EXPECT_EQ(server.try_submit(samples_[4], low, &extra_low),
            SubmitStatus::kShed);

  // ...but a kHigh arrival evicts the *youngest* queued kLow request.
  SubmitOptions high;
  high.priority = Priority::kHigh;
  std::future<vsa::Prediction> vip;
  ASSERT_EQ(server.try_submit(samples_[5], high, &vip), SubmitStatus::kOk);
  EXPECT_EQ(server.queue_depth(), 3u);
  EXPECT_THROW(youngest.get(), RequestShed);

  GatedBackend::release();
  // The evicted slot went to the high-priority request; the older kLow
  // requests keep their FIFO progress and still complete correctly.
  EXPECT_EQ(vip.get().scores, model_.predict_reference(samples_[5]).scores);
  EXPECT_EQ(oldest.get().scores,
            model_.predict_reference(samples_[1]).scores);
  EXPECT_EQ(middle.get().scores,
            model_.predict_reference(samples_[2]).scores);
  pinned.get();
  server.shutdown();
  // Two sheds: the refused extra kLow and the eviction.
  EXPECT_EQ(server.stats().shed, 2u);
}

TEST_F(RobustnessTest, WorkersDrainHighestPriorityClassFirst) {
  Server server = gated_server(/*queue_capacity=*/8, /*shed_watermark=*/8);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();

  // Queue low before high; the worker must still dispatch high first.
  // Completion order is observable through the completed counter at the
  // moment each future resolves.
  SubmitOptions low;
  low.priority = Priority::kLow;
  SubmitOptions high;
  high.priority = Priority::kHigh;
  auto low_future = server.submit(samples_[1], low);
  auto high_future = server.submit(samples_[2], high);

  GatedBackend::release();
  high_future.get();
  // max_batch=1: when the high result lands, the low one may be mid-
  // dispatch but cannot have completed *before* it. stats() already
  // accounts for high (stats-before-fulfillment), so completed >= 2
  // (pinned + high) and the low request finishes after.
  low_future.get();
  pinned.get();
  server.shutdown();
  EXPECT_EQ(server.stats().completed, 3u);
}

TEST_F(RobustnessTest, BoundedRetriesThrowServerOverloadedOnceExhausted) {
  Server server = gated_server(/*queue_capacity=*/1, /*shed_watermark=*/1);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();
  auto queued = server.submit(samples_[1]);  // queue now full

  SubmitOptions bounded;
  bounded.max_retries = 3;
  bounded.retry_backoff_us = 100;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(server.submit(samples_[2], bounded), ServerOverloaded);
  // 3 backoff waits of 100/200/400 us must have elapsed.
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::microseconds(700));
  EXPECT_EQ(server.stats().retries, 3u);

  GatedBackend::release();
  queued.get();
  pinned.get();
  server.shutdown();
}

TEST_F(RobustnessTest, BoundedRetriesSucceedWhenSpaceFreesInTime) {
  Server server = gated_server(/*queue_capacity=*/1, /*shed_watermark=*/1);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();
  auto queued = server.submit(samples_[1]);  // queue now full

  // Release the gate shortly after the retry loop starts waiting: the
  // worker drains the queue and a later attempt succeeds.
  std::thread releaser([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    GatedBackend::release();
  });
  SubmitOptions bounded;
  bounded.max_retries = 20;
  bounded.retry_backoff_us = 500;
  auto retried = server.submit(samples_[2], bounded);
  releaser.join();

  EXPECT_EQ(retried.get().scores,
            model_.predict_reference(samples_[2]).scores);
  queued.get();
  pinned.get();
  server.shutdown();
  EXPECT_GE(server.stats().retries, 1u);
}

TEST_F(RobustnessTest, HealthDegradesAboveWatermarkAndRecoversWithHysteresis) {
  // capacity 8, watermark 4, recovery threshold watermark/2 = 2.
  Server server = gated_server(/*queue_capacity=*/8, /*shed_watermark=*/4);
  EXPECT_EQ(server.health(), HealthState::kServing);

  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();
  std::vector<std::future<vsa::Prediction>> queued;
  for (std::size_t i = 1; i <= 4; ++i) {
    queued.push_back(server.submit(samples_[i]));
  }
  EXPECT_EQ(server.queue_depth(), 4u);
  EXPECT_EQ(server.health(), HealthState::kDegraded);

  GatedBackend::release();
  for (auto& f : queued) f.get();
  pinned.get();
  // Queue fully drained (0 <= watermark/2): back to serving.
  EXPECT_EQ(server.health(), HealthState::kServing);

  server.shutdown();
  EXPECT_EQ(server.health(), HealthState::kDraining);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.health, HealthState::kDraining);
  // serving -> degraded -> serving -> draining.
  EXPECT_EQ(stats.health_transitions, 3u);
}

TEST_F(RobustnessTest, ShutdownDrainsMixedPrioritiesExactlyOnce) {
  // Exactly-once under drain: every accepted request resolves exactly
  // once — a correct result or a refusal — and none is lost, across all
  // priority classes with deadlines in the mix.
  ServerOptions options;
  options.workers = 2;
  options.max_batch = 4;
  options.max_delay_us = 1000;  // draining must cut the coalescing short
  options.queue_capacity = 64;
  options.shed_watermark = 64;  // no shedding: isolate drain behavior
  Server server(model_, options);

  std::vector<vsa::Prediction> expected;
  make_backend("reference", model_)->predict_batch(samples_, expected);

  std::vector<std::future<vsa::Prediction>> futures;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    SubmitOptions opts;
    opts.priority = static_cast<Priority>(i % kPriorityClasses);
    // Every 4th request gets a deadline; generous enough that most
    // survive, but expiry under drain must still resolve the future.
    if (i % 4 == 0) opts.deadline_us = 50000;
    futures.push_back(server.submit(samples_[i], opts));
    index.push_back(i);
  }
  server.shutdown();

  std::size_t completed = 0, refused = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].valid()) << "request " << i << " lost";
    try {
      const vsa::Prediction got = futures[i].get();
      EXPECT_EQ(got.label, expected[index[i]].label) << "request " << i;
      EXPECT_EQ(got.scores, expected[index[i]].scores) << "request " << i;
      ++completed;
    } catch (const DeadlineExceeded&) {
      ++refused;  // legal: deadline passed while draining
    }
  }
  EXPECT_EQ(completed + refused, samples_.size());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.deadline_rejected, refused);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(RobustnessTest, InFlightBoundedRetrySurvivesShutdown) {
  // A submitter parked in the bounded-retry loop when shutdown() lands
  // must resolve (kShutdown refusal), not hang.
  Server server = gated_server(/*queue_capacity=*/1, /*shed_watermark=*/1);
  auto pinned = server.submit(samples_[0]);
  GatedBackend::wait_for_dispatch();
  auto queued = server.submit(samples_[1]);

  std::atomic<bool> refused{false};
  std::thread retrier([&] {
    SubmitOptions bounded;
    bounded.max_retries = 1000;
    bounded.retry_backoff_us = 200;
    try {
      server.submit(samples_[2], bounded).get();
    } catch (const std::exception&) {
      refused.store(true);  // shutdown or overload — either resolves
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  GatedBackend::release();
  server.shutdown();
  retrier.join();
  queued.get();
  pinned.get();
  // The retrier either got served after the gate opened or was refused;
  // in both cases the thread resolved. No assertion on which — the
  // invariant is termination plus a consistent final state.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace univsa::runtime
