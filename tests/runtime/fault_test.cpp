// Deterministic fault injection (runtime/fault.h):
//   - a FaultPlan is a pure function of (seed, lane, sequence): the same
//     seed replays the identical schedule, different seeds diverge, and
//     concurrent lanes never perturb each other,
//   - FaultInjectedBackend surfaces scheduled errors as InjectedFault
//     and leaves every non-faulted result bit-identical to the wrapped
//     backend,
//   - a Server running the canned overload plan stays available: every
//     completed request matches the reference backend bit-for-bit and
//     injected errors arrive through the futures, not as crashes.
#include "univsa/runtime/fault.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"
#include "univsa/vsa/model.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::vector<std::uint16_t>> random_samples(
    const vsa::ModelConfig& c, std::size_t n, Rng& rng) {
  std::vector<std::vector<std::uint16_t>> samples(n);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
  }
  return samples;
}

FaultSpec busy_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.error_rate = 0.2;
  spec.stall_rate = 0.1;
  spec.stall_us = 0;  // keep the test fast: decisions, not real sleeps
  spec.slowdown_rate = 0.3;
  spec.slowdown_us = 0;
  return spec;
}

TEST(FaultPlanTest, SameSeedReplaysTheIdenticalSchedule) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "UNIVSA_FAULTS=OFF";
  const FaultPlan a(busy_spec(99));
  const FaultPlan b(busy_spec(99));
  for (std::size_t lane = 0; lane < 4; ++lane) {
    for (std::uint64_t seq = 0; seq < 512; ++seq) {
      const FaultDecision da = a.at(lane, seq);
      const FaultDecision db = b.at(lane, seq);
      EXPECT_EQ(da.error, db.error) << "lane " << lane << " seq " << seq;
      EXPECT_EQ(da.stall, db.stall) << "lane " << lane << " seq " << seq;
      EXPECT_EQ(da.delay_us, db.delay_us)
          << "lane " << lane << " seq " << seq;
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsAndLanesDiverge) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "UNIVSA_FAULTS=OFF";
  const FaultPlan a(busy_spec(1));
  const FaultPlan b(busy_spec(2));
  std::size_t seed_diffs = 0, lane_diffs = 0;
  for (std::uint64_t seq = 0; seq < 512; ++seq) {
    const FaultDecision da = a.at(0, seq);
    if (da.error != b.at(0, seq).error) ++seed_diffs;
    if (da.error != a.at(1, seq).error) ++lane_diffs;
  }
  EXPECT_GT(seed_diffs, 0u);
  EXPECT_GT(lane_diffs, 0u);
}

TEST(FaultPlanTest, NextMatchesAtAndCountsInjections) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "UNIVSA_FAULTS=OFF";
  FaultPlan plan(busy_spec(7));
  std::uint64_t errors = 0, stalls = 0, slowdowns = 0;
  for (std::uint64_t seq = 0; seq < 256; ++seq) {
    const FaultDecision expected = plan.at(0, seq);
    const FaultDecision got = plan.next(0);
    EXPECT_EQ(got.error, expected.error) << "seq " << seq;
    EXPECT_EQ(got.stall, expected.stall) << "seq " << seq;
    EXPECT_EQ(got.delay_us, expected.delay_us) << "seq " << seq;
    if (got.error) {
      ++errors;
    } else if (got.stall) {
      ++stalls;
    } else if (got.delay_us != 0) {
      ++slowdowns;
    }
  }
  EXPECT_EQ(plan.injected_errors(), errors);
  EXPECT_EQ(plan.injected_stalls(), stalls);
  // With the rates in busy_spec all three kinds fired somewhere in 256
  // draws (probability of this failing is astronomically small).
  EXPECT_GT(errors, 0u);
  EXPECT_GT(stalls + plan.injected_slowdowns(), 0u);
}

TEST(FaultPlanTest, ConcurrentLanesDoNotPerturbEachOther) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "UNIVSA_FAULTS=OFF";
  // Four threads draw on their own lanes concurrently; the sequence each
  // observes must equal the pure schedule, regardless of interleaving.
  FaultPlan plan(busy_spec(11));
  constexpr std::size_t kLanes = 4;
  constexpr std::uint64_t kDraws = 2000;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> mismatches(kLanes, 0);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    threads.emplace_back([&, lane] {
      for (std::uint64_t seq = 0; seq < kDraws; ++seq) {
        const FaultDecision expected = plan.at(lane, seq);
        const FaultDecision got = plan.next(lane);
        if (got.error != expected.error || got.stall != expected.stall ||
            got.delay_us != expected.delay_us) {
          ++mismatches[lane];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(mismatches[lane], 0u) << "lane " << lane;
  }
}

TEST(FaultPlanTest, CompiledOffFoldsEveryDecisionToNoFault) {
  if (kFaultsCompiledIn) {
    GTEST_SKIP() << "meaningful only under UNIVSA_FAULTS=OFF";
  }
  FaultSpec always;
  always.error_rate = 1.0;
  FaultPlan plan(always);
  EXPECT_FALSE(plan.next(0).any());
  EXPECT_FALSE(plan.at(0, 123).any());
  EXPECT_EQ(plan.injected_total(), 0u);
}

TEST(FaultInjectedBackendTest, ErrorsSurfaceAndCleanResultsStayBitIdentical) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "UNIVSA_FAULTS=OFF";
  Rng rng(21);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 40, rng);
  std::vector<vsa::Prediction> expected;
  make_backend("reference", m)->predict_batch(samples, expected);

  auto plan = std::make_shared<FaultPlan>(busy_spec(5));
  FaultInjectedBackend faulty(make_backend("packed", m), plan, /*lane=*/0);
  EXPECT_EQ(faulty.name(), "packed+fault");

  std::size_t faulted = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // The schedule is known ahead of time: dispatch i draws sequence i.
    const bool will_fault = plan->at(0, i).error;
    vsa::Prediction out;
    if (will_fault) {
      EXPECT_THROW(faulty.predict_into(samples[i], out), InjectedFault);
      ++faulted;
    } else {
      faulty.predict_into(samples[i], out);
      EXPECT_EQ(out.label, expected[i].label) << "sample " << i;
      EXPECT_EQ(out.scores, expected[i].scores) << "sample " << i;
    }
  }
  EXPECT_GT(faulted, 0u);
  EXPECT_EQ(plan->injected_errors(), faulted);
}

TEST(FaultInjectedBackendTest, ServerUnderCannedPlanStaysCorrect) {
  Rng rng(22);
  const vsa::ModelConfig c = small_config();
  const vsa::Model m = vsa::Model::random(c, rng);
  const auto samples = random_samples(c, 60, rng);
  std::vector<vsa::Prediction> expected;
  make_backend("reference", m)->predict_batch(samples, expected);

  FaultSpec spec = canned_overload_spec(3);
  spec.stall_us = 500;     // keep CI fast; rates stay the canned ones
  spec.slowdown_us = 100;
  ServerOptions options;
  options.workers = 2;
  options.max_batch = 8;
  options.max_delay_us = 50;
  options.fault_plan = std::make_shared<FaultPlan>(spec);
  Server server(m, options);

  std::size_t completed = 0, faulted = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Client-side resubmit after an injected error, production-style.
    for (std::size_t attempt = 0; attempt < 8; ++attempt) {
      try {
        const vsa::Prediction got = server.submit(samples[i]).get();
        ASSERT_EQ(got.label, expected[i].label) << "sample " << i;
        ASSERT_EQ(got.scores, expected[i].scores) << "sample " << i;
        ++completed;
        break;
      } catch (const InjectedFault&) {
        ++faulted;
      }
    }
  }
  server.shutdown();
  // Every request eventually completed with a bit-identical result.
  EXPECT_EQ(completed, samples.size());
  if (kFaultsCompiledIn) {
    EXPECT_EQ(options.fault_plan->injected_errors() > 0, faulted > 0);
  } else {
    EXPECT_EQ(faulted, 0u);
  }
}

}  // namespace
}  // namespace univsa::runtime
