// ModelRegistry unit tests + the RCU hot-swap drill.
//
// The drill is the TSan-covered half: submitter threads stream requests
// through a Server while the main thread flips the tenant's model
// between two versions. Every completed answer must be bit-exact under
// one of the two published snapshots, and no request may be dropped —
// the registry's atomic snapshot flip is wait-free for readers and
// in-flight work finishes on the snapshot it resolved at submit time.
#include "univsa/runtime/model_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/runtime/registry.h"
#include "univsa/runtime/server.h"

namespace univsa::runtime {
namespace {

vsa::ModelConfig small_config() {
  vsa::ModelConfig config;
  config.W = 3;
  config.L = 5;
  config.C = 2;
  config.M = 8;
  config.D_H = 4;
  config.D_L = 2;
  config.D_K = 3;
  config.O = 6;
  config.Theta = 2;
  config.validate();
  return config;
}

vsa::Model make_model(std::uint64_t seed) {
  Rng rng(seed);
  return vsa::Model::random(small_config(), rng);
}

TEST(ModelRegistry, PublishReturnsMonotonicVersions) {
  ModelRegistry registry;
  EXPECT_EQ(registry.publish("a", make_model(1)), 1u);
  EXPECT_EQ(registry.publish("a", make_model(2)), 2u);
  EXPECT_EQ(registry.publish("b", make_model(3)), 1u);
  EXPECT_EQ(registry.publish("a", make_model(4)), 3u);
  EXPECT_EQ(registry.tenant("a").version_count(), 3u);
  EXPECT_EQ(registry.tenant("b").version_count(), 1u);
}

TEST(ModelRegistry, LatestTracksTheNewestPublish) {
  ModelRegistry registry;
  registry.publish("t", make_model(1));
  const SnapshotPtr v1 = registry.latest("t");
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->tenant(), "t");
  EXPECT_EQ(v1->key(), "t@1");

  registry.publish("t", make_model(2));
  const SnapshotPtr v2 = registry.latest("t");
  EXPECT_EQ(v2->version(), 2u);
  // The old snapshot is still alive and unchanged (RCU: readers that
  // resolved v1 keep serving on it).
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_FALSE(v1->model() == v2->model());
}

TEST(ModelRegistry, ResolvePinnedAndLatestForms) {
  ModelRegistry registry;
  registry.publish("t", make_model(1));
  registry.publish("t", make_model(2));

  EXPECT_EQ(registry.resolve("t")->version(), 2u);
  EXPECT_EQ(registry.resolve("t@latest")->version(), 2u);
  EXPECT_EQ(registry.resolve("t@1")->version(), 1u);
  EXPECT_EQ(registry.resolve("t@2")->version(), 2u);
  // Pinned resolution is stable across later publishes.
  const SnapshotPtr pinned = registry.resolve("t@1");
  registry.publish("t", make_model(3));
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(registry.resolve("t@1")->version(), 1u);
  EXPECT_EQ(registry.resolve("t")->version(), 3u);
}

TEST(ModelRegistry, TenantNamesMayContainSlashes) {
  ModelRegistry registry;
  registry.publish("zoo/kws", make_model(1));
  EXPECT_EQ(registry.resolve("zoo/kws@1")->tenant(), "zoo/kws");
  EXPECT_TRUE(registry.has_tenant("zoo/kws"));
}

TEST(ModelRegistry, MissingTenantThrowsUnknownTenant) {
  ModelRegistry registry;
  registry.publish("present", make_model(1));
  EXPECT_THROW(registry.latest("missing"), UnknownTenant);
  EXPECT_THROW(registry.resolve("missing@1"), UnknownTenant);
  EXPECT_THROW(registry.tenant("missing"), UnknownTenant);
  EXPECT_EQ(registry.find_tenant("missing"), nullptr);
  // UnknownTenant is an invalid_argument, so generic handlers work.
  EXPECT_THROW(registry.latest("missing"), std::invalid_argument);
  // The message lists the known tenants to make typos obvious.
  try {
    registry.latest("missing");
    FAIL() << "expected UnknownTenant";
  } catch (const UnknownTenant& e) {
    EXPECT_NE(std::string(e.what()).find("present"), std::string::npos);
  }
}

TEST(ModelRegistry, MalformedOrMissingVersionsThrow) {
  ModelRegistry registry;
  registry.publish("t", make_model(1));
  EXPECT_THROW(registry.resolve("t@0"), std::invalid_argument);
  EXPECT_THROW(registry.resolve("t@99"), std::invalid_argument);
  EXPECT_THROW(registry.resolve("t@abc"), std::invalid_argument);
  EXPECT_THROW(registry.resolve("t@"), std::invalid_argument);
  EXPECT_THROW(registry.resolve("@1"), std::invalid_argument);
  EXPECT_THROW(registry.resolve(""), std::invalid_argument);
  EXPECT_THROW(registry.publish("", make_model(1)),
               std::invalid_argument);
  EXPECT_THROW(registry.publish("a@b", make_model(1)),
               std::invalid_argument);
}

TEST(ModelRegistry, ParseKeySplitsAtTheFirstAt) {
  const auto plain = ModelRegistry::parse_key("tenant");
  EXPECT_EQ(plain.first, "tenant");
  EXPECT_FALSE(plain.second.has_value());

  const auto latest = ModelRegistry::parse_key("tenant@latest");
  EXPECT_EQ(latest.first, "tenant");
  EXPECT_FALSE(latest.second.has_value());

  const auto pinned = ModelRegistry::parse_key("zoo/kws@12");
  EXPECT_EQ(pinned.first, "zoo/kws");
  EXPECT_EQ(pinned.second, 12u);
}

TEST(ModelRegistry, TenantNamesSortedAndCounted) {
  ModelRegistry registry;
  registry.publish("b", make_model(1));
  registry.publish("a", make_model(2));
  registry.publish("c", make_model(3));
  registry.publish("a", make_model(4));
  EXPECT_EQ(registry.tenant_count(), 3u);
  const std::vector<std::string> names = registry.tenant_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(ModelRegistry, VersionAccessorsMatchHistory) {
  ModelRegistry registry;
  registry.publish("t", make_model(1));
  registry.publish("t", make_model(2));
  const ModelRegistry::Tenant& tenant = registry.tenant("t");
  EXPECT_EQ(tenant.version(1)->version(), 1u);
  EXPECT_EQ(tenant.version(2)->version(), 2u);
  // Pinned lookup of a never-published version is null, not a throw
  // (resolve("t@0") is the throwing form).
  EXPECT_EQ(tenant.version(0), nullptr);
  EXPECT_EQ(tenant.version(3), nullptr);
}

// --- The hot-swap drill (TSan-covered) ---------------------------------

TEST(ModelRegistryHotSwap, ConcurrentResolveAndPublish) {
  ModelRegistry registry;
  registry.publish("t", make_model(1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> resolves{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const SnapshotPtr snap = registry.latest("t");
        ASSERT_NE(snap, nullptr);
        ASSERT_GE(snap->version(), 1u);
        resolves.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t v = 2; v <= 20; ++v) {
    EXPECT_EQ(registry.publish("t", make_model(v)), v);
  }
  // On a loaded single-core box the publishes can finish before any
  // reader is scheduled; insist on overlap before stopping them.
  while (resolves.load(std::memory_order_relaxed) < 64) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(resolves.load(), 0u);
  EXPECT_EQ(registry.latest("t")->version(), 20u);
}

TEST(ModelRegistryHotSwap, ServerFlipMidFlightIsBitExactAndDropsNothing) {
  const vsa::ModelConfig config = small_config();
  const vsa::Model m1 = make_model(101);
  const vsa::Model m2 = make_model(202);

  // Sample pool + expected predictions under both versions.
  Rng rng(7);
  const std::size_t n_samples = 16;
  std::vector<std::vector<std::uint16_t>> samples(n_samples);
  for (auto& s : samples) {
    s.resize(config.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(config.M));
    }
  }
  std::vector<vsa::Prediction> expected1, expected2;
  make_backend("reference", m1)->predict_batch(samples, expected1);
  make_backend("reference", m2)->predict_batch(samples, expected2);

  auto registry = std::make_shared<ModelRegistry>();
  registry->publish("t", m1);

  ServerOptions options;
  options.workers = 2;
  options.max_batch = 8;
  options.max_delay_us = 20;
  options.queue_capacity = 64;

  const std::size_t per_thread = 300;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> matched_v2{0};
  {
    Server server(registry, options);
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < 2; ++t) {
      submitters.emplace_back([&, t] {
        SubmitOptions so;
        so.tenant = "t";
        for (std::size_t i = 0; i < per_thread; ++i) {
          const std::size_t sample = (t + 2 * i) % n_samples;
          try {
            const vsa::Prediction got =
                server.submit(samples[sample], so).get();
            completed.fetch_add(1, std::memory_order_relaxed);
            const bool is1 = got.label == expected1[sample].label &&
                             got.scores == expected1[sample].scores;
            const bool is2 = got.label == expected2[sample].label &&
                             got.scores == expected2[sample].scores;
            if (is2) matched_v2.fetch_add(1, std::memory_order_relaxed);
            if (!is1 && !is2) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const std::exception&) {
            dropped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Flip versions mid-flight, several times, ending on m2.
    for (int flip = 0; flip < 5; ++flip) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      registry->publish("t", flip % 2 == 0 ? m2 : m1);
    }
    for (auto& t : submitters) t.join();
  }

  EXPECT_EQ(completed.load(), 2 * per_thread);
  EXPECT_EQ(dropped.load(), 0u);
  // Every answer was produced under exactly one of the two published
  // snapshots — never a torn mixture.
  EXPECT_EQ(mismatches.load(), 0u);
  // The final flips landed while traffic was still flowing, so some
  // tail requests served on m2.
  EXPECT_GT(matched_v2.load(), 0u);
  EXPECT_EQ(registry->latest("t")->version(), 6u);
}

}  // namespace
}  // namespace univsa::runtime
