#include "univsa/data/discretizer.h"

#include <gtest/gtest.h>

#include <vector>

namespace univsa::data {
namespace {

TEST(DiscretizerTest, MapsRangeToAllLevels) {
  Discretizer d(4, 0.0);
  const std::vector<float> values = {0.0f, 1.0f, 2.0f, 3.0f, 4.0f};
  d.fit(values);
  EXPECT_EQ(d.transform(0.0f), 0);
  EXPECT_EQ(d.transform(3.99f), 3);
  EXPECT_EQ(d.transform(4.0f), 3);  // top edge clamps into last bin
}

TEST(DiscretizerTest, ClampsOutOfRange) {
  Discretizer d(256, 0.0);
  const std::vector<float> values = {-1.0f, 1.0f};
  d.fit(values);
  EXPECT_EQ(d.transform(-100.0f), 0);
  EXPECT_EQ(d.transform(100.0f), 255);
}

TEST(DiscretizerTest, MonotonicInValue) {
  Discretizer d(256);
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<float>(i) * 0.01f);
  }
  d.fit(values);
  std::uint16_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto level = d.transform(static_cast<float>(i) * 0.01f);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

TEST(DiscretizerTest, TrimIgnoresOutliers) {
  Discretizer d(256, 0.01);
  std::vector<float> values(1000, 0.0f);
  for (int i = 0; i < 1000; ++i) {
    values[i] = static_cast<float>(i % 100);
  }
  values[0] = 1e9f;  // single wild outlier
  d.fit(values);
  EXPECT_LT(d.hi(), 1000.0f);
}

TEST(DiscretizerTest, DegenerateConstantSignal) {
  Discretizer d(16, 0.0);
  const std::vector<float> values(10, 3.0f);
  d.fit(values);
  EXPECT_EQ(d.transform(3.0f), 0);  // lo == value -> first bin
  EXPECT_NO_THROW(d.transform(100.0f));
}

TEST(DiscretizerTest, TransformBeforeFitThrows) {
  Discretizer d;
  EXPECT_THROW(d.transform(1.0f), std::invalid_argument);
  EXPECT_THROW(d.inverse(0), std::invalid_argument);
}

TEST(DiscretizerTest, FitOnEmptyThrows) {
  Discretizer d;
  EXPECT_THROW(d.fit(std::vector<float>{}), std::invalid_argument);
}

TEST(DiscretizerTest, InverseReturnsBinMidpoint) {
  Discretizer d(4, 0.0);
  const std::vector<float> values = {0.0f, 4.0f};
  d.fit(values);
  EXPECT_NEAR(d.inverse(0), 0.5f, 1e-5f);
  EXPECT_NEAR(d.inverse(3), 3.5f, 1e-5f);
  EXPECT_THROW(d.inverse(4), std::invalid_argument);
}

TEST(DiscretizerTest, InverseThenTransformIsIdentityOnLevels) {
  Discretizer d(256, 0.0);
  std::vector<float> values;
  for (int i = 0; i <= 1000; ++i) {
    values.push_back(static_cast<float>(i) / 1000.0f);
  }
  d.fit(values);
  for (std::uint16_t level = 0; level < 256; ++level) {
    EXPECT_EQ(d.transform(d.inverse(level)), level);
  }
}

TEST(DiscretizerTest, BatchTransformMatchesScalar) {
  Discretizer d(8, 0.0);
  const std::vector<float> fit_values = {0.0f, 8.0f};
  d.fit(fit_values);
  const std::vector<float> inputs = {0.5f, 3.3f, 7.9f};
  const auto levels = d.transform(inputs);
  ASSERT_EQ(levels.size(), 3u);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(levels[i], d.transform(inputs[i]));
  }
}

TEST(DiscretizerTest, RejectsBadConstruction) {
  EXPECT_THROW(Discretizer(1), std::invalid_argument);
  EXPECT_THROW(Discretizer(256, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::data
