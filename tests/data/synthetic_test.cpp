#include "univsa/data/synthetic.h"

#include <gtest/gtest.h>

#include "univsa/baselines/lda.h"
#include "univsa/data/benchmarks.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::data {
namespace {

SyntheticSpec small_spec(Domain domain) {
  SyntheticSpec spec;
  spec.name = "test";
  spec.domain = domain;
  spec.windows = 4;
  spec.length = 8;
  spec.classes = 3;
  spec.train_count = 120;
  spec.test_count = 60;
  spec.seed = 99;
  return spec;
}

TEST(SyntheticTest, ShapesAndCounts) {
  const SyntheticResult r = generate(small_spec(Domain::kTime));
  EXPECT_EQ(r.train.size(), 120u);
  EXPECT_EQ(r.test.size(), 60u);
  EXPECT_EQ(r.train.windows(), 4u);
  EXPECT_EQ(r.train.length(), 8u);
  EXPECT_EQ(r.train.classes(), 3u);
  EXPECT_EQ(r.train.levels(), 256u);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const SyntheticResult a = generate(small_spec(Domain::kFrequency));
  const SyntheticResult b = generate(small_spec(Domain::kFrequency));
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.values(i), b.train.values(i));
    EXPECT_EQ(a.train.label(i), b.train.label(i));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec = small_spec(Domain::kTime);
  const SyntheticResult a = generate(spec);
  spec.seed = 100;
  const SyntheticResult b = generate(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.size() && !any_diff; ++i) {
    any_diff = a.train.values(i) != b.train.values(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, AllClassesPresent) {
  const SyntheticResult r = generate(small_spec(Domain::kTime));
  const auto counts = r.train.class_counts();
  for (const auto c : counts) EXPECT_GT(c, 20u);
}

TEST(SyntheticTest, ImbalanceSkewsClassZero) {
  SyntheticSpec spec = small_spec(Domain::kFrequency);
  spec.classes = 2;
  spec.imbalance = 0.5;
  spec.train_count = 400;
  const SyntheticResult r = generate(spec);
  const auto counts = r.train.class_counts();
  // p(class 0) = 0.75.
  EXPECT_GT(counts[0], 260u);
  EXPECT_LT(counts[1], 140u);
}

TEST(SyntheticTest, ValuesUseWideLevelRange) {
  const SyntheticResult r = generate(small_spec(Domain::kTime));
  std::uint16_t lo = 255;
  std::uint16_t hi = 0;
  for (std::size_t i = 0; i < r.train.size(); ++i) {
    for (const auto v : r.train.values(i)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_LT(lo, 30);
  EXPECT_GT(hi, 225);
}

TEST(SyntheticTest, ClassesAreLearnable) {
  // A linear classifier must beat chance comfortably on both domains —
  // the datasets are synthetic, not noise.
  for (const Domain domain : {Domain::kTime, Domain::kFrequency}) {
    SyntheticSpec spec = small_spec(domain);
    spec.train_count = 300;
    spec.noise = 0.6;
    const SyntheticResult r = generate(spec);
    baselines::LdaClassifier lda;
    lda.fit(r.train.to_float_matrix(), r.train.labels(),
            r.train.classes());
    const double acc =
        lda.accuracy(r.test.to_float_matrix(), r.test.labels());
    EXPECT_GT(acc, 0.55) << "domain " << to_string(domain);
  }
}

TEST(SyntheticTest, RejectsInvalidSpecs) {
  SyntheticSpec spec = small_spec(Domain::kTime);
  spec.classes = 1;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = small_spec(Domain::kTime);
  spec.train_count = 0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = small_spec(Domain::kTime);
  spec.imbalance = 1.0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(BenchmarksTest, TableOneGeometryIsVerbatim) {
  const auto& all = table1_benchmarks();
  ASSERT_EQ(all.size(), 6u);

  const auto& eegmmi = find_benchmark("EEGMMI");
  EXPECT_EQ(eegmmi.config.W, 16u);
  EXPECT_EQ(eegmmi.config.L, 64u);
  EXPECT_EQ(eegmmi.config.C, 2u);
  EXPECT_EQ(eegmmi.config.D_H, 8u);
  EXPECT_EQ(eegmmi.config.D_L, 2u);
  EXPECT_EQ(eegmmi.config.D_K, 3u);
  EXPECT_EQ(eegmmi.config.O, 95u);
  EXPECT_EQ(eegmmi.config.Theta, 1u);
  EXPECT_EQ(eegmmi.spec.domain, Domain::kTime);

  const auto& isolet = find_benchmark("ISOLET");
  EXPECT_EQ(isolet.config.C, 26u);
  EXPECT_EQ(isolet.config.O, 22u);
  EXPECT_EQ(isolet.config.Theta, 3u);

  const auto& chb_ib = find_benchmark("CHB-IB");
  EXPECT_EQ(chb_ib.config.D_K, 5u);
  EXPECT_GT(chb_ib.spec.imbalance, 0.0);
}

TEST(BenchmarksTest, SpecAndConfigGeometriesAgree) {
  for (const auto& b : table1_benchmarks()) {
    EXPECT_EQ(b.spec.windows, b.config.W) << b.spec.name;
    EXPECT_EQ(b.spec.length, b.config.L) << b.spec.name;
    EXPECT_EQ(b.spec.classes, b.config.C) << b.spec.name;
    EXPECT_EQ(b.spec.levels, b.config.M) << b.spec.name;
    EXPECT_NO_THROW(b.config.validate());
  }
}

TEST(BenchmarksTest, UnknownNameThrows) {
  EXPECT_THROW(find_benchmark("MNIST"), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::data
