#include "univsa/data/dataset.h"

#include <gtest/gtest.h>

namespace univsa::data {
namespace {

Dataset tiny_dataset() {
  Dataset d(2, 3, 2, 4);
  d.add({0, 1, 2, 3, 0, 1}, 0);
  d.add({3, 2, 1, 0, 3, 2}, 1);
  d.add({1, 1, 1, 1, 1, 1}, 0);
  d.add({2, 2, 2, 2, 2, 2}, 1);
  return d;
}

TEST(DatasetTest, GeometryAndCounts) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.windows(), 2u);
  EXPECT_EQ(d.length(), 3u);
  EXPECT_EQ(d.features(), 6u);
  EXPECT_EQ(d.classes(), 2u);
  EXPECT_EQ(d.levels(), 4u);
  EXPECT_EQ(d.size(), 4u);
  const auto counts = d.class_counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(DatasetTest, AddValidatesSampleSizeLabelsAndLevels) {
  Dataset d(2, 3, 2, 4);
  EXPECT_THROW(d.add({0, 1, 2}, 0), std::invalid_argument);
  EXPECT_THROW(d.add({0, 1, 2, 3, 0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(d.add({0, 1, 2, 3, 0, 4}, 0), std::invalid_argument);
}

TEST(DatasetTest, FloatMatrixNormalizesToUnitInterval) {
  const Dataset d = tiny_dataset();
  const Tensor m = d.to_float_matrix();
  ASSERT_EQ(m.dim(0), 4u);
  ASSERT_EQ(m.dim(1), 6u);
  EXPECT_EQ(m.at(0, 0), 0.0f);
  EXPECT_EQ(m.at(0, 3), 1.0f);   // level 3 of 4 -> 1.0
  EXPECT_NEAR(m.at(2, 0), 1.0f / 3.0f, 1e-6f);
}

TEST(DatasetTest, SubsetPreservesSamples) {
  const Dataset d = tiny_dataset();
  const Dataset s = d.subset({2, 0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.label(0), 0);
  EXPECT_EQ(s.values(1), d.values(0));
}

TEST(DatasetTest, ShuffleKeepsPairsTogether) {
  Dataset d(1, 1, 2, 10);
  // value i paired with label i % 2
  for (std::uint16_t i = 0; i < 10; ++i) {
    d.add({i}, static_cast<int>(i % 2));
  }
  Rng rng(1);
  d.shuffle(rng);
  EXPECT_EQ(d.size(), 10u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.label(i), static_cast<int>(d.values(i)[0] % 2));
  }
}

TEST(DatasetTest, ShuffleIsDeterministic) {
  Dataset a = tiny_dataset();
  Dataset b = tiny_dataset();
  Rng ra(5);
  Rng rb(5);
  a.shuffle(ra);
  b.shuffle(rb);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.values(i), b.values(i));
    EXPECT_EQ(a.label(i), b.label(i));
  }
}

TEST(StratifiedSplitTest, PreservesClassProportions) {
  Dataset d(1, 1, 2, 256);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    d.add({static_cast<std::uint16_t>(i % 256)}, 0);
  }
  for (int i = 0; i < 50; ++i) {
    d.add({static_cast<std::uint16_t>(i % 256)}, 1);
  }
  const TrainTestSplit split = stratified_split(d, 0.2, rng);
  const auto test_counts = split.test.class_counts();
  EXPECT_EQ(test_counts[0], 20u);
  EXPECT_EQ(test_counts[1], 10u);
  EXPECT_EQ(split.train.size() + split.test.size(), 150u);
}

TEST(StratifiedSplitTest, RejectsDegenerateFraction) {
  const Dataset d = tiny_dataset();
  Rng rng(1);
  EXPECT_THROW(stratified_split(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(d, 1.0, rng), std::invalid_argument);
}

TEST(DomainTest, ToString) {
  EXPECT_EQ(to_string(Domain::kTime), "Time");
  EXPECT_EQ(to_string(Domain::kFrequency), "Frequency");
}

}  // namespace
}  // namespace univsa::data
