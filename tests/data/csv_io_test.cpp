#include "univsa/data/csv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "univsa/data/synthetic.h"

namespace univsa::data {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  ASSERT_TRUE(os.is_open());
  os << content;
}

TEST(CsvIoTest, DatasetRoundtrip) {
  SyntheticSpec spec;
  spec.name = "csv";
  spec.domain = Domain::kFrequency;
  spec.windows = 3;
  spec.length = 5;
  spec.classes = 2;
  spec.levels = 16;
  spec.train_count = 40;
  spec.test_count = 10;
  spec.seed = 5;
  const SyntheticResult r = generate(spec);

  const std::string path = temp_path("roundtrip.csv");
  save_csv(r.train, path);
  const Dataset loaded = load_csv(path, 3, 5, 2, 16);
  ASSERT_EQ(loaded.size(), r.train.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.values(i), r.train.values(i));
    EXPECT_EQ(loaded.label(i), r.train.label(i));
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, HeaderLineIsSkipped) {
  const std::string path = temp_path("header.csv");
  write_file(path, "label,f0,f1\n0,1.5,2.5\n1,3.0,4.0\n");
  const RawTable t = load_raw_csv(path);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.features, 2u);
  EXPECT_EQ(t.labels[1], 1);
  EXPECT_FLOAT_EQ(t.rows[0][1], 2.5f);
  std::remove(path.c_str());
}

TEST(CsvIoTest, NoHeaderWorksToo) {
  const std::string path = temp_path("noheader.csv");
  write_file(path, "0,1.0\n1,2.0\n");
  const RawTable t = load_raw_csv(path);
  EXPECT_EQ(t.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvIoTest, RaggedRowRejected) {
  const std::string path = temp_path("ragged.csv");
  write_file(path, "0,1.0,2.0\n1,3.0\n");
  EXPECT_THROW(load_raw_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvIoTest, NonNumericCellRejected) {
  const std::string path = temp_path("nonnum.csv");
  write_file(path, "0,1.0\n1,abc\n");
  EXPECT_THROW(load_raw_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvIoTest, HeaderAfterFirstLineRejected) {
  const std::string path = temp_path("badheader.csv");
  write_file(path, "0,1.0\nlabel,f0\n");
  EXPECT_THROW(load_raw_csv(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileRejected) {
  EXPECT_THROW(load_raw_csv("/nonexistent/x.csv"),
               std::invalid_argument);
}

TEST(CsvIoTest, BuildDatasetsFitsDiscretizerOnTrainOnly) {
  RawTable train;
  train.features = 4;
  // Training values span [0, 10].
  for (int i = 0; i < 20; ++i) {
    train.rows.push_back({0.0f, 2.5f, 5.0f, 10.0f});
    train.labels.push_back(i % 2);
  }
  RawTable test = train;
  // Test outlier far outside the training range must clamp, not crash.
  test.rows[0][3] = 500.0f;

  CsvDatasetOptions options;
  options.windows = 2;
  options.length = 2;
  options.levels = 8;
  const CsvDatasetResult r = build_datasets(train, test, options);
  EXPECT_EQ(r.train.classes(), 2u);
  EXPECT_EQ(r.test.values(0)[3], 7);  // clamped to top level
}

TEST(CsvIoTest, BuildDatasetsPadsFeatures) {
  RawTable train;
  train.features = 3;
  train.rows = {{0.0f, 1.0f, 2.0f}, {2.0f, 1.0f, 0.0f}};
  train.labels = {0, 1};
  RawTable test = train;

  CsvDatasetOptions options;
  options.windows = 2;
  options.length = 3;  // target 6 > 3 -> pad
  options.levels = 4;
  options.pad_features = true;
  const CsvDatasetResult r = build_datasets(train, test, options);
  EXPECT_EQ(r.train.features(), 6u);
  EXPECT_EQ(r.train.values(0)[4], 2);  // mid level of 4
}

TEST(CsvIoTest, BuildDatasetsInfersClassCount) {
  RawTable train;
  train.features = 1;
  train.rows = {{0.0f}, {1.0f}, {2.0f}};
  train.labels = {0, 1, 4};
  RawTable test = train;
  CsvDatasetOptions options;
  options.windows = 1;
  options.length = 1;
  const CsvDatasetResult r = build_datasets(train, test, options);
  EXPECT_EQ(r.train.classes(), 5u);
}

TEST(CsvIoTest, BuildDatasetsValidatesGeometry) {
  RawTable t;
  t.features = 3;
  t.rows = {{0.0f, 1.0f, 2.0f}};
  t.labels = {0};
  CsvDatasetOptions options;
  options.windows = 2;
  options.length = 2;  // 4 != 3, no padding
  EXPECT_THROW(build_datasets(t, t, options), std::invalid_argument);
}

TEST(CsvIoTest, LoadCsvValidatesLevels) {
  const std::string path = temp_path("levels.csv");
  write_file(path, "label,f0,f1\n0,3,17\n");
  EXPECT_THROW(load_csv(path, 1, 2, 2, 16), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace univsa::data
