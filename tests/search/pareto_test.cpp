#include "univsa/search/pareto.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/vsa/memory_model.h"

namespace univsa::search {
namespace {

vsa::ModelConfig task_geometry() {
  vsa::ModelConfig t;
  t.W = 8;
  t.L = 8;
  t.C = 4;
  t.M = 256;
  return t;
}

double surrogate_accuracy(const vsa::ModelConfig& c) {
  const double capacity =
      static_cast<double>(c.O) * c.D_H * (c.Theta > 1 ? 1.1 : 1.0);
  return 1.0 - std::exp(-capacity / 150.0);
}

ParetoPoint point(double acc, double mem, double res) {
  ParetoPoint p;
  p.accuracy = acc;
  p.memory_kb = mem;
  p.resource_units = res;
  return p;
}

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(dominates(point(0.9, 1.0, 10), point(0.8, 2.0, 20)));
  EXPECT_FALSE(dominates(point(0.8, 2.0, 20), point(0.9, 1.0, 10)));
}

TEST(DominanceTest, IncomparablePoints) {
  // Better accuracy but more memory: neither dominates.
  EXPECT_FALSE(dominates(point(0.9, 2.0, 10), point(0.8, 1.0, 10)));
  EXPECT_FALSE(dominates(point(0.8, 1.0, 10), point(0.9, 2.0, 10)));
}

TEST(DominanceTest, EqualPointsDoNotDominate) {
  EXPECT_FALSE(dominates(point(0.9, 1.0, 10), point(0.9, 1.0, 10)));
}

TEST(NonDominatedTest, FiltersDominatedPoints) {
  std::vector<ParetoPoint> pts = {
      point(0.9, 1.0, 10),  // front
      point(0.8, 2.0, 20),  // dominated by the first
      point(0.95, 3.0, 30), // front (best accuracy)
  };
  pts[0].config = task_geometry();
  pts[1].config = task_geometry();
  pts[1].config.O = 16;
  pts[2].config = task_geometry();
  pts[2].config.O = 32;
  const auto front = non_dominated(pts);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_DOUBLE_EQ(front[0].memory_kb, 1.0);
  EXPECT_DOUBLE_EQ(front[1].memory_kb, 3.0);
}

TEST(ParetoSearchTest, FrontIsMutuallyNonDominated) {
  ParetoOptions options;
  options.population = 16;
  options.generations = 8;
  options.seed = 1;
  const ParetoResult r = pareto_search(task_geometry(), SearchSpace{},
                                       surrogate_accuracy, options);
  ASSERT_GE(r.front.size(), 2u);
  for (const auto& a : r.front) {
    for (const auto& b : r.front) {
      EXPECT_FALSE(dominates(a, b) && dominates(b, a));
    }
  }
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    for (std::size_t j = 0; j < r.front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(r.front[i], r.front[j]));
      }
    }
  }
}

TEST(ParetoSearchTest, FrontSortedByMemoryAndTradesAccuracy) {
  ParetoOptions options;
  options.population = 20;
  options.generations = 10;
  options.seed = 2;
  const ParetoResult r = pareto_search(task_geometry(), SearchSpace{},
                                       surrogate_accuracy, options);
  ASSERT_GE(r.front.size(), 2u);
  for (std::size_t i = 1; i < r.front.size(); ++i) {
    EXPECT_GE(r.front[i].memory_kb, r.front[i - 1].memory_kb);
    // On the front, spending more memory must buy accuracy or save
    // resources (otherwise the point would be dominated).
    if (r.front[i].memory_kb > r.front[i - 1].memory_kb) {
      EXPECT_TRUE(r.front[i].accuracy > r.front[i - 1].accuracy ||
                  r.front[i].resource_units <
                      r.front[i - 1].resource_units);
    }
  }
}

TEST(ParetoSearchTest, SingleObjectiveOptimumLiesOnTheFront) {
  // Run the Eq. 7 scalarized search; its winner must not be dominated by
  // anything the multi-objective search found (modulo shared oracle).
  SearchOptions single;
  single.population = 16;
  single.generations = 10;
  single.seed = 3;
  const SearchResult scalar = evolutionary_search(
      task_geometry(), SearchSpace{}, surrogate_accuracy, single);
  ParetoPoint winner;
  winner.config = scalar.best_config;
  winner.accuracy = scalar.best_accuracy;
  winner.memory_kb = vsa::memory_kb(scalar.best_config);
  winner.resource_units =
      static_cast<double>(vsa::resource_units(scalar.best_config));

  ParetoOptions options;
  options.population = 24;
  options.generations = 12;
  options.seed = 3;
  const ParetoResult pareto = pareto_search(
      task_geometry(), SearchSpace{}, surrogate_accuracy, options);
  for (const auto& p : pareto.front) {
    EXPECT_FALSE(dominates(p, winner))
        << "front point strictly dominates the Eq. 7 optimum";
  }
}

TEST(ParetoSearchTest, DeterministicForSeed) {
  ParetoOptions options;
  options.population = 12;
  options.generations = 4;
  options.seed = 4;
  const ParetoResult a = pareto_search(task_geometry(), SearchSpace{},
                                       surrogate_accuracy, options);
  const ParetoResult b = pareto_search(task_geometry(), SearchSpace{},
                                       surrogate_accuracy, options);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].config, b.front[i].config);
  }
}

TEST(ParetoSearchTest, ValidatesOptions) {
  ParetoOptions options;
  options.population = 2;
  EXPECT_THROW(pareto_search(task_geometry(), SearchSpace{},
                             surrogate_accuracy, options),
               std::invalid_argument);
  options.population = 8;
  EXPECT_THROW(
      pareto_search(task_geometry(), SearchSpace{}, AccuracyFn{}, options),
      std::invalid_argument);
}

}  // namespace
}  // namespace univsa::search
