#include "univsa/search/evolutionary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "univsa/common/thread_pool.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::search {
namespace {

vsa::ModelConfig task_geometry() {
  vsa::ModelConfig t;
  t.W = 8;
  t.L = 8;
  t.C = 4;
  t.M = 256;
  return t;
}

/// Analytic oracle with a known sweet spot: accuracy saturates in O with
/// diminishing returns, mimicking Fig. 4's capacity curve.
double surrogate_accuracy(const vsa::ModelConfig& c) {
  const double capacity =
      static_cast<double>(c.O) * c.D_H * (c.Theta > 1 ? 1.1 : 1.0) *
      (c.D_K == 3 ? 1.0 : 1.05);
  return 1.0 - std::exp(-capacity / 150.0);
}

TEST(EvolutionarySearchTest, FindsHighObjectiveConfiguration) {
  SearchOptions options;
  options.population = 20;
  options.generations = 15;
  options.seed = 1;
  const SearchResult r = evolutionary_search(
      task_geometry(), SearchSpace{}, surrogate_accuracy, options);

  // Exhaustive sweep over the discrete space for the true optimum.
  double best = -1e9;
  const SearchSpace space;
  for (const auto dh : space.d_h) {
    for (const auto dl : space.d_l) {
      for (const auto dk : space.d_k) {
        for (std::size_t o = space.o_min; o <= space.o_max; ++o) {
          for (const auto theta : space.theta) {
            vsa::ModelConfig c = task_geometry();
            c.D_H = dh;
            c.D_L = std::min(dl, dh);
            c.D_K = dk;
            c.O = o;
            c.Theta = theta;
            const double obj =
                surrogate_accuracy(c) - vsa::hardware_penalty(c);
            best = std::max(best, obj);
          }
        }
      }
    }
  }
  EXPECT_GT(r.best_objective, best - 0.02)
      << "GA " << r.best_objective << " vs optimum " << best;
}

TEST(EvolutionarySearchTest, ElitismMakesBestMonotonic) {
  SearchOptions options;
  options.population = 12;
  options.generations = 10;
  options.seed = 2;
  const SearchResult r = evolutionary_search(
      task_geometry(), SearchSpace{}, surrogate_accuracy, options);
  for (std::size_t g = 1; g < r.history.size(); ++g) {
    EXPECT_GE(r.history[g].best_objective + 1e-12,
              r.history[g - 1].best_objective);
  }
}

TEST(EvolutionarySearchTest, DeterministicForSeed) {
  SearchOptions options;
  options.population = 10;
  options.generations = 5;
  options.seed = 3;
  const SearchResult a = evolutionary_search(
      task_geometry(), SearchSpace{}, surrogate_accuracy, options);
  const SearchResult b = evolutionary_search(
      task_geometry(), SearchSpace{}, surrogate_accuracy, options);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(EvolutionarySearchTest, MemoizationBoundsOracleCalls) {
  // Atomic: the default options evaluate candidates across the pool.
  std::atomic<std::size_t> calls{0};
  const auto counting = [&calls](const vsa::ModelConfig& c) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return surrogate_accuracy(c);
  };
  SearchOptions options;
  options.population = 10;
  options.generations = 10;
  options.seed = 4;
  const SearchResult r = evolutionary_search(task_geometry(), SearchSpace{},
                                             counting, options);
  EXPECT_EQ(calls.load(), r.evaluations);
  // Without memoization this would be population·(generations+1) minus
  // elites; with it, repeats are free.
  EXPECT_LE(r.evaluations,
            options.population * (options.generations + 1));
}

TEST(EvolutionarySearchTest, ResultRespectsSpaceBounds) {
  SearchSpace space;
  space.o_min = 10;
  space.o_max = 20;
  space.d_h = {4};
  space.d_l = {2};
  SearchOptions options;
  options.population = 8;
  options.generations = 6;
  options.seed = 5;
  const SearchResult r = evolutionary_search(task_geometry(), space,
                                             surrogate_accuracy, options);
  EXPECT_GE(r.best_config.O, 10u);
  EXPECT_LE(r.best_config.O, 20u);
  EXPECT_EQ(r.best_config.D_H, 4u);
  EXPECT_LE(r.best_config.D_L, r.best_config.D_H);
  EXPECT_NO_THROW(r.best_config.validate());
}

TEST(EvolutionarySearchTest, PenaltyDiscouragesOversizedConfigs) {
  // With a flat accuracy oracle, the search must prefer small hardware.
  const auto flat = [](const vsa::ModelConfig&) { return 0.9; };
  SearchOptions options;
  options.population = 16;
  options.generations = 12;
  options.seed = 6;
  options.lambda1 = 0.05;
  options.lambda2 = 0.05;
  const SearchResult r =
      evolutionary_search(task_geometry(), SearchSpace{}, flat, options);
  // The minimum of the space is (D_H=2, D_K=3, O=8, Θ=1).
  EXPECT_LE(r.best_config.O, 16u);
  EXPECT_LE(r.best_config.D_H, 4u);
}

TEST(EvolutionarySearchTest, ParallelMatchesSerialBitForBit) {
  // The determinism contract of the parallel GA: for a fixed seed, the
  // parallel search must reproduce the serial trajectory exactly —
  // best config, every objective, the generation history, and the
  // number of oracle evaluations.
  set_global_pool_threads(4);
  for (const std::uint64_t seed : {7ull, 13ull, 99ull}) {
    SearchOptions serial_opts;
    serial_opts.population = 14;
    serial_opts.generations = 8;
    serial_opts.seed = seed;
    serial_opts.parallel = false;
    SearchOptions parallel_opts = serial_opts;
    parallel_opts.parallel = true;

    // A seeded oracle whose result depends on the per-genome seed: if the
    // parallel path derived seeds from evaluation order or thread id,
    // the trajectories would diverge.
    const SeededAccuracyFn oracle = [](const vsa::ModelConfig& c,
                                       std::uint64_t seed_in) {
      Rng rng(seed_in);
      return surrogate_accuracy(c) + 1e-3 * rng.uniform();
    };

    const SearchResult a = evolutionary_search(task_geometry(),
                                               SearchSpace{}, oracle,
                                               serial_opts);
    const SearchResult b = evolutionary_search(task_geometry(),
                                               SearchSpace{}, oracle,
                                               parallel_opts);
    EXPECT_EQ(a.best_config, b.best_config) << "seed " << seed;
    EXPECT_EQ(a.best_objective, b.best_objective) << "seed " << seed;
    EXPECT_EQ(a.best_accuracy, b.best_accuracy) << "seed " << seed;
    EXPECT_EQ(a.evaluations, b.evaluations) << "seed " << seed;
    ASSERT_EQ(a.history.size(), b.history.size()) << "seed " << seed;
    for (std::size_t g = 0; g < a.history.size(); ++g) {
      EXPECT_EQ(a.history[g].best_objective, b.history[g].best_objective)
          << "seed " << seed << " gen " << g;
      EXPECT_EQ(a.history[g].mean_objective, b.history[g].mean_objective)
          << "seed " << seed << " gen " << g;
    }
  }
  set_global_pool_threads(0);  // restore hardware default
}

TEST(EvolutionarySearchTest, ValidatesOptions) {
  SearchOptions options;
  options.population = 1;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   surrogate_accuracy, options),
               std::invalid_argument);
  options.population = 8;
  options.elite = 8;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   surrogate_accuracy, options),
               std::invalid_argument);
  options.elite = 2;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   AccuracyFn{}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace univsa::search
