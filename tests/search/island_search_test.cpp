// Determinism and semantics of the scaled co-design search: island-model
// evolution, ring migration, surrogate pre-screening, and the native
// multi-objective mode. The core contract under test: for a fixed seed
// and fixed island/migration/surrogate parameters, the search trajectory
// is a pure function of the options — identical across thread counts,
// and (in legacy single-island exact mode) identical to the PR 2
// single-population search bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "univsa/common/thread_pool.h"
#include "univsa/search/pareto.h"
#include "univsa/vsa/memory_model.h"

namespace univsa::search {
namespace {

vsa::ModelConfig task_geometry() {
  vsa::ModelConfig t;
  t.W = 8;
  t.L = 8;
  t.C = 4;
  t.M = 256;
  return t;
}

/// Analytic stand-in for trained accuracy (same shape as the
/// evolutionary_test oracle).
double analytic_accuracy(const vsa::ModelConfig& c) {
  const double capacity =
      static_cast<double>(c.O) * c.D_H * (c.Theta > 1 ? 1.1 : 1.0) *
      (c.D_K == 3 ? 1.0 : 1.05);
  return 1.0 - std::exp(-capacity / 150.0);
}

/// Seed-sensitive oracle: if any path derived seeds from evaluation
/// order or thread id, trajectories would diverge across schedules.
double seeded_accuracy(const vsa::ModelConfig& c, std::uint64_t seed) {
  Rng rng(seed);
  return analytic_accuracy(c) + 1e-3 * rng.uniform();
}

/// A deliberately-biased cheap proxy (slightly underestimates, like
/// truncated-epoch training would).
double proxy_accuracy(const vsa::ModelConfig& c, std::uint64_t seed) {
  Rng rng(seed);
  return 0.9 * analytic_accuracy(c) + 1e-3 * rng.uniform();
}

void expect_identical(const SearchResult& a, const SearchResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.best_config, b.best_config) << label;
  EXPECT_EQ(a.best_objective, b.best_objective) << label;
  EXPECT_EQ(a.best_accuracy, b.best_accuracy) << label;
  EXPECT_EQ(a.evaluations, b.evaluations) << label;
  EXPECT_EQ(a.surrogate_evaluations, b.surrogate_evaluations) << label;
  EXPECT_EQ(a.surrogate_promoted, b.surrogate_promoted) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t g = 0; g < a.history.size(); ++g) {
    EXPECT_EQ(a.history[g].best_objective, b.history[g].best_objective)
        << label << " gen " << g;
    EXPECT_EQ(a.history[g].mean_objective, b.history[g].mean_objective)
        << label << " gen " << g;
  }
  ASSERT_EQ(a.front.size(), b.front.size()) << label;
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].config, b.front[i].config) << label;
    EXPECT_EQ(a.front[i].accuracy, b.front[i].accuracy) << label;
  }
}

TEST(IslandSearchTest, BitIdenticalAcrossThreadCounts) {
  // Fixed seed + fixed island/migration/surrogate params ⇒ bit-identical
  // results for thread counts 1, 2, and 8 — the determinism half of the
  // scaling contract (ISSUE 7 acceptance).
  SearchOptions options;
  options.population = 8;
  options.generations = 6;
  options.elite = 2;
  options.islands = 4;
  options.migration_interval = 2;
  options.emigrants = 2;
  options.surrogate = proxy_accuracy;
  options.surrogate_keep = 0.5;
  options.seed = 7;

  std::vector<SearchResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    set_global_pool_threads(threads);
    runs.push_back(evolutionary_search(task_geometry(), SearchSpace{},
                                       SeededAccuracyFn(seeded_accuracy),
                                       options));
  }
  set_global_pool_threads(0);
  expect_identical(runs[0], runs[1], "threads 1 vs 2");
  expect_identical(runs[0], runs[2], "threads 1 vs 8");
}

TEST(IslandSearchTest, SerialAndParallelIslandTrajectoriesMatch) {
  SearchOptions options;
  options.population = 6;
  options.generations = 5;
  options.elite = 2;
  options.islands = 3;
  options.migration_interval = 2;
  options.emigrants = 1;
  options.seed = 13;
  options.parallel = false;
  const SearchResult serial = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      options);
  options.parallel = true;
  const SearchResult parallel = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      options);
  expect_identical(serial, parallel, "islands serial vs parallel");
}

TEST(IslandSearchTest, LegacyModeMatchesPr2GoldenTrajectories) {
  // Regression pin: single-island exact mode must reproduce the PR 2
  // single-population search bit-for-bit. These values were captured
  // from the pre-island implementation for seeds 7/13/99 (population 14,
  // 8 generations, seed-sensitive oracle).
  struct Golden {
    std::uint64_t seed;
    std::size_t d_h, d_l, d_k, o, theta;
    double objective, accuracy;
    std::size_t evaluations;
  };
  const Golden goldens[] = {
      {7, 8, 1, 3, 95, 5, 0x1.f1bc8aeb14841p-1, 0x1.fe7e7670333c6p-1, 72},
      {13, 16, 1, 3, 47, 5, 0x1.f217bd7e43af9p-1, 0x1.fe6d800d9fd88p-1,
       79},
      {99, 16, 1, 3, 52, 5, 0x1.f1e3f7028f1aap-1, 0x1.ff59b991eb439p-1,
       76},
  };
  for (const auto& g : goldens) {
    SearchOptions options;
    options.population = 14;
    options.generations = 8;
    options.seed = g.seed;
    const SearchResult r = evolutionary_search(
        task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
        options);
    EXPECT_EQ(r.best_config.D_H, g.d_h) << "seed " << g.seed;
    EXPECT_EQ(r.best_config.D_L, g.d_l) << "seed " << g.seed;
    EXPECT_EQ(r.best_config.D_K, g.d_k) << "seed " << g.seed;
    EXPECT_EQ(r.best_config.O, g.o) << "seed " << g.seed;
    EXPECT_EQ(r.best_config.Theta, g.theta) << "seed " << g.seed;
    EXPECT_EQ(r.best_objective, g.objective) << "seed " << g.seed;
    EXPECT_EQ(r.best_accuracy, g.accuracy) << "seed " << g.seed;
    EXPECT_EQ(r.evaluations, g.evaluations) << "seed " << g.seed;
  }
}

TEST(IslandSearchTest, RingMigrationPlanTopology) {
  // K=4, P=10, E=3: island i sends ranks 0..2 to island (i+1) mod 4,
  // replacing ranks 7..9, in (from, rank) order.
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t,
                         std::size_t>> moves;
  ring_migration_plan(4, 10, 3,
                      [&](std::size_t from, std::size_t rank,
                          std::size_t to, std::size_t replaced) {
                        moves.emplace_back(from, rank, to, replaced);
                      });
  ASSERT_EQ(moves.size(), 12u);
  std::size_t idx = 0;
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t rank = 0; rank < 3; ++rank, ++idx) {
      EXPECT_EQ(moves[idx],
                std::make_tuple(from, rank, (from + 1) % 4, 7 + rank));
    }
  }
}

TEST(IslandSearchTest, RingMigrationPlanClampsAndDegenerates) {
  // Emigrant count clamps to population − 1 (an island never fully
  // overwrites its neighbour)...
  std::size_t count = 0;
  ring_migration_plan(3, 4, 99,
                      [&](std::size_t, std::size_t rank, std::size_t,
                          std::size_t replaced) {
                        ++count;
                        EXPECT_LT(rank, 3u);
                        EXPECT_GE(replaced, 1u);
                      });
  EXPECT_EQ(count, 9u);
  // ...and a single island (or empty exchange) is a no-op.
  ring_migration_plan(1, 8, 2,
                      [&](std::size_t, std::size_t, std::size_t,
                          std::size_t) { FAIL() << "no-op expected"; });
  ring_migration_plan(4, 8, 0,
                      [&](std::size_t, std::size_t, std::size_t,
                          std::size_t) { FAIL() << "no-op expected"; });
}

TEST(IslandSearchTest, SurrogateKeepOneMatchesExactMode) {
  // Screening with keep = 1.0 promotes every fresh candidate, so the
  // trajectory must equal exact mode bit-for-bit — the screen consumes
  // no search RNG and the proxy scores only gate promotion.
  SearchOptions exact;
  exact.population = 10;
  exact.generations = 6;
  exact.islands = 2;
  exact.migration_interval = 3;
  exact.seed = 42;
  SearchOptions screened = exact;
  screened.surrogate = proxy_accuracy;
  screened.surrogate_keep = 1.0;

  const SearchResult a = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      exact);
  const SearchResult b = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      screened);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(b.surrogate_evaluations, b.evaluations);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t g = 0; g < a.history.size(); ++g) {
    EXPECT_EQ(a.history[g].best_objective, b.history[g].best_objective);
    EXPECT_EQ(a.history[g].mean_objective, b.history[g].mean_objective);
  }
}

TEST(IslandSearchTest, SurrogateScreeningCutsOracleCalls) {
  SearchOptions exact;
  exact.population = 12;
  exact.generations = 8;
  exact.islands = 2;
  exact.seed = 5;
  SearchOptions screened = exact;
  screened.surrogate = proxy_accuracy;
  screened.surrogate_keep = 0.25;

  const SearchResult full = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      exact);
  const SearchResult cut = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      screened);
  // The screen must cut full-oracle work hard (~4x here) while still
  // finding a competitive configuration.
  EXPECT_LT(cut.evaluations, full.evaluations / 2);
  EXPECT_EQ(cut.evaluations, cut.surrogate_promoted);
  EXPECT_GE(cut.surrogate_evaluations, cut.evaluations);
  EXPECT_GT(cut.best_objective, 0.9 * full.best_objective);
  // The reported winner must be a fully-evaluated configuration whose
  // objective is consistent with its reported accuracy.
  EXPECT_EQ(cut.best_objective,
            cut.best_accuracy -
                vsa::hardware_penalty(cut.best_config, screened.lambda1,
                                      screened.lambda2));
}

TEST(IslandSearchTest, NativeParetoModeEmitsNonDominatedFront) {
  SearchOptions options;
  options.population = 12;
  options.generations = 8;
  options.islands = 2;
  options.migration_interval = 3;
  options.pareto = true;
  options.seed = 23;
  const SearchResult r = evolutionary_search(
      task_geometry(), SearchSpace{}, SeededAccuracyFn(seeded_accuracy),
      options);

  ASSERT_FALSE(r.front.empty());
  // Pairwise non-domination and ascending-memory ordering.
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    for (std::size_t j = 0; j < r.front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(r.front[j], r.front[i]));
      }
    }
    if (i > 0) {
      EXPECT_GE(r.front[i].memory_kb, r.front[i - 1].memory_kb);
    }
    // Every point's memory/resource figures are the closed-form models.
    EXPECT_EQ(r.front[i].memory_kb, vsa::memory_kb(r.front[i].config));
    EXPECT_EQ(r.front[i].resource_units,
              static_cast<double>(vsa::resource_units(r.front[i].config)));
  }
  // The scalar best is still reported and is on or behind the front.
  EXPECT_GT(r.best_objective, 0.0);
}

TEST(IslandSearchTest, ParetoModeDeterministicAcrossThreadCounts) {
  SearchOptions options;
  options.population = 10;
  options.generations = 6;
  options.islands = 3;
  options.pareto = true;
  options.surrogate = proxy_accuracy;
  options.surrogate_keep = 0.5;
  options.seed = 31;
  std::vector<SearchResult> runs;
  for (const std::size_t threads : {1u, 8u}) {
    set_global_pool_threads(threads);
    runs.push_back(evolutionary_search(task_geometry(), SearchSpace{},
                                       SeededAccuracyFn(seeded_accuracy),
                                       options));
  }
  set_global_pool_threads(0);
  expect_identical(runs[0], runs[1], "pareto threads 1 vs 8");
}

TEST(IslandSearchTest, ValidatesIslandAndSurrogateOptions) {
  SearchOptions options;
  options.islands = 0;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   SeededAccuracyFn(seeded_accuracy),
                                   options),
               std::invalid_argument);
  options.islands = 2;
  options.migration_interval = 0;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   SeededAccuracyFn(seeded_accuracy),
                                   options),
               std::invalid_argument);
  options.migration_interval = 2;
  options.surrogate = proxy_accuracy;
  options.surrogate_keep = 0.0;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   SeededAccuracyFn(seeded_accuracy),
                                   options),
               std::invalid_argument);
  options.surrogate_keep = 1.5;
  EXPECT_THROW(evolutionary_search(task_geometry(), SearchSpace{},
                                   SeededAccuracyFn(seeded_accuracy),
                                   options),
               std::invalid_argument);
}

}  // namespace
}  // namespace univsa::search
