#include "univsa/report/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace univsa::report {
namespace {

TEST(StatsTest, SummaryOfKnownValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                      9.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(StatsTest, SingleValueHasZeroStddev) {
  const std::vector<double> values = {3.5};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, EmptyRejected) {
  EXPECT_THROW(summarize(std::vector<double>{}), std::invalid_argument);
}

TEST(StatsTest, RunningMatchesBatch) {
  const std::vector<double> values = {0.1, -2.0, 3.7, 8.4, -1.1, 0.0};
  RunningStats rs;
  for (const double v : values) rs.add(v);
  const Summary s = summarize(values);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(StatsTest, RunningRejectsEmptyQueries) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), std::invalid_argument);
  EXPECT_THROW(rs.stddev(), std::invalid_argument);
}

TEST(StatsTest, FormatMeanStd) {
  Summary s;
  s.mean = 0.89174;
  s.stddev = 0.01231;
  EXPECT_EQ(fmt_mean_std(s, 4), "0.8917 ± 0.0123");
}

TEST(StatsTest, WelfordIsStableForLargeOffsets) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    rs.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(rs.mean(), 1e9, 1e-3);
  EXPECT_NEAR(rs.stddev(), 1.0005, 1e-3);
}

}  // namespace
}  // namespace univsa::report
