#include "univsa/report/metrics.h"

#include <gtest/gtest.h>

namespace univsa::report {
namespace {

ConfusionMatrix worked_example() {
  // 2-class:  TP=40 FN=10 / FP=5 TN=45 (class 0 = positive).
  ConfusionMatrix cm(2);
  for (int i = 0; i < 40; ++i) cm.add(0, 0);
  for (int i = 0; i < 10; ++i) cm.add(0, 1);
  for (int i = 0; i < 5; ++i) cm.add(1, 0);
  for (int i = 0; i < 45; ++i) cm.add(1, 1);
  return cm;
}

TEST(ConfusionMatrixTest, AccuracyFromDiagonal) {
  const ConfusionMatrix cm = worked_example();
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.85);
  EXPECT_EQ(cm.total(), 100u);
}

TEST(ConfusionMatrixTest, PrecisionRecallF1) {
  const ConfusionMatrix cm = worked_example();
  EXPECT_NEAR(cm.precision(0), 40.0 / 45.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 40.0 / 50.0, 1e-12);
  const double p = 40.0 / 45.0;
  const double r = 0.8;
  EXPECT_NEAR(cm.f1(0), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrixTest, MacroF1AveragesClasses) {
  const ConfusionMatrix cm = worked_example();
  EXPECT_NEAR(cm.macro_f1(), (cm.f1(0) + cm.f1(1)) / 2.0, 1e-12);
}

TEST(ConfusionMatrixTest, EmptyClassMetricsAreZero) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 0);
  EXPECT_EQ(cm.precision(2), 0.0);
  EXPECT_EQ(cm.recall(2), 0.0);
  EXPECT_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrixTest, PerfectClassifier) {
  ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) cm.add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrixTest, ValidatesInputs) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(-1, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, 2), std::invalid_argument);
  EXPECT_THROW(cm.accuracy(), std::invalid_argument);  // empty
  EXPECT_THROW(ConfusionMatrix(1), std::invalid_argument);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  const ConfusionMatrix cm = worked_example();
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("40"), std::string::npos);
  EXPECT_NE(s.find("45"), std::string::npos);
}

}  // namespace
}  // namespace univsa::report
