#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"

namespace univsa::report {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every line has equal width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTableTest, RuleRowsRender) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  std::size_t rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);  // top, after header, mid, bottom
}

TEST(TextTableTest, CellCountValidated) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FormatTest, FmtPrecision) {
  EXPECT_EQ(fmt(0.89714, 4), "0.8971");
  EXPECT_EQ(fmt(13.591, 2), "13.59");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(FormatTest, VsPaperPairsValues) {
  EXPECT_EQ(fmt_vs_paper(0.9, 0.8971, 4), "0.9000 (paper 0.8971)");
}

TEST(CsvTest, WritesAndQuotes) {
  const std::string path = ::testing::TempDir() + "/report_test.csv";
  write_csv(path, {"a", "b"},
            {{"1", "plain"}, {"2", "with,comma"}, {"3", "with\"quote"}});
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(PaperConstantsTest, TableTwoHasSixTasksWithSaneValues) {
  const auto& rows = paper_table2();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_GT(r.univsa_acc, 0.85);
    EXPECT_LT(r.univsa_kb, 20.0);
    EXPECT_GT(r.svm_kb, r.univsa_kb);   // SVM is orders larger
    EXPECT_GT(r.lehdc_kb, r.ldc_kb);    // high-D costs more
  }
}

TEST(PaperConstantsTest, TableTwoAveragesMatchPaperSummaryRow) {
  const auto& rows = paper_table2();
  double univsa = 0.0;
  double ldc = 0.0;
  for (const auto& r : rows) {
    univsa += r.univsa_acc;
    ldc += r.ldc_acc;
  }
  // The paper's printed averages (0.9445 / 0.9225) differ from the
  // column means by ~1e-3 — presumably rounded per-task entries.
  EXPECT_NEAR(univsa / 6.0, 0.9445, 2e-3);
  EXPECT_NEAR(ldc / 6.0, 0.9225, 2e-3);
}

TEST(PaperConstantsTest, TableFourRowsComplete) {
  const auto& rows = paper_table4();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_LT(r.power_w, 0.5);
    EXPECT_LT(r.latency_ms, 0.21);
    EXPECT_GT(r.throughput_kilo, 5.0);
    EXPECT_EQ(r.dsps, 0u);
  }
}

TEST(PaperConstantsTest, TableThreeCitationsPresent) {
  const auto& rows = paper_table3_citations();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].name, "SVM [31]");
  EXPECT_EQ(rows[5].name, "LDC [11]");
}

TEST(PaperConstantsTest, Fig4OverheadsMatchSectionThreeB) {
  const auto o = paper_fig4_overheads();
  EXPECT_DOUBLE_EQ(o.dvp_percent, 0.59);
  EXPECT_DOUBLE_EQ(o.biconv_percent, 5.64);
  EXPECT_DOUBLE_EQ(o.sv_percent, 0.39);
}

}  // namespace
}  // namespace univsa::report
