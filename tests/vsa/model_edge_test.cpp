// Edge-of-the-envelope configurations for the deployed model and the
// hardware functional simulator: minimal dimensions, maximal lane
// counts, degenerate grids. These are the places where index arithmetic
// and padding masks break first.
#include <gtest/gtest.h>

#include "univsa/hw/functional_sim.h"
#include "univsa/vsa/memory_model.h"
#include "univsa/vsa/model.h"

namespace univsa::vsa {
namespace {

std::vector<std::uint16_t> random_sample(const ModelConfig& c, Rng& rng) {
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

struct EdgeCase {
  const char* name;
  ModelConfig config;
};

EdgeCase make_case(const char* name, std::size_t w, std::size_t l,
                   std::size_t classes, std::size_t m, std::size_t d_h,
                   std::size_t d_l, std::size_t d_k, std::size_t o,
                   std::size_t theta) {
  EdgeCase e;
  e.name = name;
  e.config.W = w;
  e.config.L = l;
  e.config.C = classes;
  e.config.M = m;
  e.config.D_H = d_h;
  e.config.D_L = d_l;
  e.config.D_K = d_k;
  e.config.O = o;
  e.config.Theta = theta;
  return e;
}

class ModelEdgeTest : public ::testing::TestWithParam<EdgeCase> {};

TEST_P(ModelEdgeTest, PredictsAndMatchesFunctionalSim) {
  const EdgeCase& e = GetParam();
  Rng rng(99);
  const Model m = Model::random(e.config, rng);
  const hw::Accelerator accel(m);
  for (int trial = 0; trial < 5; ++trial) {
    const auto values = random_sample(e.config, rng);
    const Prediction sw = m.predict(values);
    ASSERT_GE(sw.label, 0);
    ASSERT_LT(static_cast<std::size_t>(sw.label), e.config.C);
    const hw::RunTrace trace = accel.run(values);
    EXPECT_EQ(trace.prediction.label, sw.label) << e.name;
    EXPECT_EQ(trace.prediction.scores, sw.scores) << e.name;
  }
}

TEST_P(ModelEdgeTest, MemoryModelIsConsistentWithBreakdown) {
  const EdgeCase& e = GetParam();
  const MemoryBreakdown b = memory_breakdown(e.config);
  EXPECT_EQ(b.total_bits(), memory_bits(e.config)) << e.name;
  EXPECT_GT(memory_kb(e.config), 0.0) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelEdgeTest,
    ::testing::Values(
        // Minimal everything.
        make_case("minimal", 1, 1, 2, 2, 1, 1, 1, 1, 1),
        // Single row / single column grids exercise padding on one axis.
        make_case("single_row", 1, 9, 2, 4, 4, 2, 3, 3, 1),
        make_case("single_col", 9, 1, 3, 4, 4, 1, 3, 2, 2),
        // Kernel bigger than one grid axis: every patch is partial.
        make_case("kernel_gt_width", 2, 7, 2, 8, 4, 2, 5, 3, 1),
        // Max supported channel lanes.
        make_case("max_lanes", 3, 4, 2, 4, 32, 4, 3, 2, 1),
        // Both value tables at the full 32-lane width (regression for the
        // undefined 1u << 32 in the low-table valid mask).
        make_case("max_lanes_both", 3, 4, 2, 4, 32, 32, 3, 2, 1),
        // D_L == D_H (DVP degenerates to a single width).
        make_case("equal_dims", 4, 4, 2, 8, 4, 4, 3, 4, 1),
        // Many voters, many classes.
        make_case("wide_vote", 3, 5, 7, 4, 2, 1, 3, 3, 5),
        // Sample dim exactly on a 64-bit word boundary.
        make_case("word_boundary", 8, 8, 2, 4, 4, 2, 3, 2, 1)),
    [](const ::testing::TestParamInfo<EdgeCase>& info) {
      return info.param.name;
    });

TEST(ModelEdgeTest2, FullLaneWidthConfigValidatesAndProjects) {
  // D_L == D_H == 32 must validate and produce all-ones valid masks on
  // both branches of the DVP (1u << 32 is UB — the masks are guarded).
  ModelConfig c;
  c.W = 2;
  c.L = 3;
  c.C = 2;
  c.M = 4;
  c.D_H = 32;
  c.D_L = 32;
  c.D_K = 3;
  c.O = 2;
  c.Theta = 1;
  EXPECT_NO_THROW(c.validate());

  Rng rng(17);
  const Model m = Model::random(c, rng, /*high_fraction=*/0.5);
  const auto values = random_sample(c, rng);
  const auto volume = m.project_values(values);
  for (std::size_t i = 0; i < volume.size(); ++i) {
    EXPECT_EQ(volume[i].valid, ~0u) << i;
  }
  const Prediction p = m.predict(values);
  EXPECT_EQ(p.scores, m.predict_reference(values).scores);
}

TEST(ModelEdgeTest2, AllLowMaskUsesOnlyVLow) {
  // Force every feature low-importance; lanes [D_L, D_H) must be dead.
  ModelConfig c;
  c.W = 3;
  c.L = 3;
  c.C = 2;
  c.M = 4;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 3;
  c.Theta = 1;
  Rng rng(5);
  const std::size_t kk = c.D_K * c.D_K;
  const Tensor v_high = Tensor::rand_sign({c.M, c.D_H}, rng);
  const Tensor v_low = Tensor::rand_sign({c.M, c.D_L}, rng);
  const Tensor kernels = Tensor::rand_sign({c.O, c.D_H * kk}, rng);
  const Tensor features = Tensor::rand_sign({c.O, c.sample_dim()}, rng);
  const Tensor classes =
      Tensor::rand_sign({c.C, c.sample_dim()}, rng);
  const std::vector<std::uint8_t> all_low(c.features(), 0);
  const Model m(c, all_low, v_high, v_low, kernels, features, classes);

  // Changing V_H must not change any prediction.
  Tensor v_high_flipped = v_high;
  for (auto& x : v_high_flipped.flat()) x = -x;
  const Model m2(c, all_low, v_high_flipped, v_low, kernels, features,
                 classes);
  for (int trial = 0; trial < 10; ++trial) {
    const auto values = random_sample(c, rng);
    EXPECT_EQ(m.predict(values).label, m2.predict(values).label);
    EXPECT_EQ(m.predict(values).scores, m2.predict(values).scores);
  }
}

TEST(ModelEdgeTest2, AllHighMaskIgnoresVLow) {
  ModelConfig c;
  c.W = 3;
  c.L = 3;
  c.C = 2;
  c.M = 4;
  c.D_H = 6;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 3;
  c.Theta = 1;
  Rng rng(6);
  const std::size_t kk = c.D_K * c.D_K;
  const Tensor v_high = Tensor::rand_sign({c.M, c.D_H}, rng);
  const Tensor v_low = Tensor::rand_sign({c.M, c.D_L}, rng);
  Tensor v_low_flipped = v_low;
  for (auto& x : v_low_flipped.flat()) x = -x;
  const Tensor kernels = Tensor::rand_sign({c.O, c.D_H * kk}, rng);
  const Tensor features = Tensor::rand_sign({c.O, c.sample_dim()}, rng);
  const Tensor classes = Tensor::rand_sign({c.C, c.sample_dim()}, rng);
  const std::vector<std::uint8_t> all_high(c.features(), 1);
  const Model a(c, all_high, v_high, v_low, kernels, features, classes);
  const Model b(c, all_high, v_high, v_low_flipped, kernels, features,
                classes);
  for (int trial = 0; trial < 10; ++trial) {
    const auto values = random_sample(c, rng);
    EXPECT_EQ(a.predict(values).scores, b.predict(values).scores);
  }
}

}  // namespace
}  // namespace univsa::vsa
