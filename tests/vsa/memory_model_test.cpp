#include "univsa/vsa/memory_model.h"

#include <gtest/gtest.h>

#include "univsa/data/benchmarks.h"
#include "univsa/report/paper_constants.h"

namespace univsa::vsa {
namespace {

TEST(MemoryModelTest, BreakdownTermsMatchEquationFive) {
  ModelConfig c;
  c.W = 16;
  c.L = 64;
  c.C = 2;
  c.M = 256;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 95;
  c.Theta = 1;
  const MemoryBreakdown b = memory_breakdown(c);
  EXPECT_EQ(b.value_vectors, 256u * 10u);
  EXPECT_EQ(b.conv_kernels, 95u * 8u * 9u);
  EXPECT_EQ(b.feature_vectors, 1024u * 95u);
  EXPECT_EQ(b.class_vectors, 1024u * 1u * 2u);
  EXPECT_EQ(b.total_bits(), memory_bits(c));
}

TEST(MemoryModelTest, ReproducesEveryTableTwoUniVsaMemoryFigure) {
  // The strongest anchor of the reproduction: Eq. 5 evaluated on the
  // Table I configurations gives Table II's UniVSA memory column exactly
  // (to the 0.01 KB the paper prints).
  const auto& paper = report::paper_table2();
  for (const auto& row : paper) {
    const auto& bench = data::find_benchmark(row.task);
    EXPECT_NEAR(memory_kb(bench.config), row.univsa_kb, 0.005)
        << row.task;
  }
}

TEST(MemoryModelTest, ReproducesTableTwoLdcMemoryColumn) {
  const auto& paper = report::paper_table2();
  for (const auto& row : paper) {
    const auto& bench = data::find_benchmark(row.task);
    const double kb =
        ldc_memory_kb(bench.config.features(), bench.config.C, 128);
    EXPECT_NEAR(kb, row.ldc_kb, 0.02) << row.task;
  }
}

TEST(MemoryModelTest, ReproducesTableTwoLehdcMemoryColumn) {
  const auto& paper = report::paper_table2();
  for (const auto& row : paper) {
    const auto& bench = data::find_benchmark(row.task);
    const double kb = lehdc_memory_kb(bench.config.features(),
                                      bench.config.C, 256, 10000);
    EXPECT_NEAR(kb, row.lehdc_kb, 0.005) << row.task;
  }
}

TEST(MemoryModelTest, ReproducesTableTwoLdaMemoryColumn) {
  const auto& paper = report::paper_table2();
  for (const auto& row : paper) {
    const auto& bench = data::find_benchmark(row.task);
    const double kb = lda_memory_kb(bench.config.features(),
                                    bench.config.C);
    EXPECT_NEAR(kb, row.lda_kb, 0.005) << row.task;
  }
}

TEST(MemoryModelTest, SvmAccountingScalesWithSupportVectors) {
  const double small = svm_memory_kb(1024, 100, 1);
  const double large = svm_memory_kb(1024, 1000, 1);
  EXPECT_GT(large, 9.0 * small);
  // 16-bit floats: 100 SVs × 1024 features ≈ 204.8 KB + coefficients.
  EXPECT_NEAR(small, (100.0 * 1024 + 100 + 1) * 2 / 1000.0, 1e-6);
}

TEST(MemoryModelTest, PenaltyIsLambdaSumAtBasis) {
  // At the basis configuration, Memory/M0 = Resource/R0 = 1, so
  // L_HW = λ1 + λ2 (Eq. 7).
  ModelConfig task;
  task.W = 16;
  task.L = 40;
  task.C = 26;
  const ModelConfig basis = hardware_basis(task);
  EXPECT_NEAR(hardware_penalty(basis), 0.01, 1e-9);
  EXPECT_NEAR(hardware_penalty(basis, 0.1, 0.2), 0.3, 1e-9);
}

TEST(MemoryModelTest, PenaltyGrowsWithResources) {
  ModelConfig task;
  task.W = 16;
  task.L = 40;
  task.C = 26;
  ModelConfig small = hardware_basis(task);
  ModelConfig big = small;
  big.O = 128;
  EXPECT_GT(hardware_penalty(big), hardware_penalty(small));
}

TEST(MemoryModelTest, ResourceUnitsFollowEquationSix) {
  ModelConfig c;
  c.W = 4;
  c.L = 4;
  c.C = 2;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 5;
  c.O = 32;
  c.Theta = 1;
  EXPECT_EQ(resource_units(c), 5u * 32u * 8u);
}

TEST(MemoryModelTest, InvalidConfigRejected) {
  ModelConfig c;  // W = L = C = 0
  EXPECT_THROW(memory_bits(c), std::invalid_argument);
  c.W = 4;
  c.L = 4;
  c.C = 2;
  c.D_K = 4;  // even kernel
  EXPECT_THROW(memory_bits(c), std::invalid_argument);
  c.D_K = 3;
  c.D_L = 16;  // D_L > D_H
  EXPECT_THROW(memory_bits(c), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::vsa
