// Fault injection on the deployed binary model.
//
// A core practical argument for binary VSA on stringent devices is
// graceful degradation: the class decision is a majority over thousands
// of independent lanes, so isolated bit faults in the stored vector sets
// (SEUs in BRAM, flash wear) shave margin instead of flipping behaviour.
// These tests flip controlled fractions of F and C bits and check the
// degradation profile.
#include <gtest/gtest.h>

#include "univsa/data/synthetic.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/model.h"

namespace univsa::vsa {
namespace {

struct Deployed {
  data::SyntheticResult data;
  Model model;
};

const Deployed& deployed() {
  static const Deployed d = [] {
    data::SyntheticSpec spec;
    spec.name = "fault";
    spec.domain = data::Domain::kFrequency;
    spec.windows = 6;
    spec.length = 12;
    spec.classes = 2;
    spec.levels = 32;
    spec.train_count = 200;
    spec.test_count = 150;
    spec.noise = 0.4;
    spec.artifact_rate = 0.0;
    spec.seed = 55;
    auto data = data::generate(spec);

    ModelConfig config;
    config.W = 6;
    config.L = 12;
    config.C = 2;
    config.M = 32;
    config.D_H = 8;
    config.D_L = 2;
    config.D_K = 3;
    config.O = 12;
    config.Theta = 3;
    train::TrainOptions options;
    options.epochs = 12;
    options.seed = 3;
    auto trained = train::train_univsa(config, data.train, options);
    return Deployed{std::move(data), std::move(trained.model)};
  }();
  return d;
}

/// Rebuilds the model with `fraction` of the F and C lanes flipped.
Model with_flipped_bits(const Model& m, double fraction, Rng& rng) {
  const ModelConfig& c = m.config();
  const std::size_t ns = c.sample_dim();
  const std::size_t kk = c.D_K * c.D_K;

  Tensor v_high({c.M, c.D_H});
  Tensor v_low({c.M, c.D_L});
  for (std::size_t level = 0; level < c.M; ++level) {
    for (std::size_t d = 0; d < c.D_H; ++d) {
      v_high.at(level, d) =
          static_cast<float>(m.value_table_high()[level].get(d));
    }
    for (std::size_t d = 0; d < c.D_L; ++d) {
      v_low.at(level, d) =
          static_cast<float>(m.value_table_low()[level].get(d));
    }
  }
  Tensor kernels({c.O, c.D_H * kk});
  for (std::size_t o = 0; o < c.O; ++o) {
    for (std::size_t d = 0; d < c.D_H; ++d) {
      for (std::size_t k = 0; k < kk; ++k) {
        kernels.at(o, d * kk + k) =
            (m.kernel_bits()[o][k] >> d) & 1u ? 1.0f : -1.0f;
      }
    }
  }
  Tensor features({c.O, ns});
  for (std::size_t o = 0; o < c.O; ++o) {
    for (std::size_t j = 0; j < ns; ++j) {
      const float bit = static_cast<float>(m.feature_vectors()[o].get(j));
      features.at(o, j) = rng.bernoulli(fraction) ? -bit : bit;
    }
  }
  Tensor classes({c.Theta * c.C, ns});
  for (std::size_t r = 0; r < c.Theta * c.C; ++r) {
    for (std::size_t j = 0; j < ns; ++j) {
      const float bit = static_cast<float>(m.class_vectors()[r].get(j));
      classes.at(r, j) = rng.bernoulli(fraction) ? -bit : bit;
    }
  }
  return Model(c, m.mask(), v_high, v_low, kernels, features, classes);
}

TEST(FaultInjectionTest, ZeroFlipRateIsIdentity) {
  Rng rng(1);
  const Model flipped = with_flipped_bits(deployed().model, 0.0, rng);
  EXPECT_EQ(flipped, deployed().model);
}

TEST(FaultInjectionTest, SmallFaultRatesShaveLittleAccuracy) {
  Rng rng(2);
  const double clean = deployed().model.accuracy(deployed().data.test);
  ASSERT_GT(clean, 0.8);
  const Model faulty = with_flipped_bits(deployed().model, 0.01, rng);
  const double acc = faulty.accuracy(deployed().data.test);
  EXPECT_GT(acc, clean - 0.10) << "1% faults cost more than 10 points";
}

TEST(FaultInjectionTest, DegradationIsGraceful) {
  // Accuracy under increasing fault rate must fall off smoothly toward
  // chance, not cliff at the first faults.
  Rng rng(3);
  const double clean = deployed().model.accuracy(deployed().data.test);
  double prev = clean;
  for (const double rate : {0.02, 0.10, 0.30}) {
    const Model faulty = with_flipped_bits(deployed().model, rate, rng);
    const double acc = faulty.accuracy(deployed().data.test);
    // Allow small non-monotonicity from randomness, no cliffs.
    EXPECT_GT(acc, 0.35) << "rate " << rate;
    EXPECT_LT(acc, prev + 0.10) << "rate " << rate;
    prev = acc;
  }
}

TEST(FaultInjectionTest, FullCorruptionIsChanceLevel) {
  // Flipping every lane negates F and C; the compounded negations cancel
  // in encoding (both F and u's sign structure flip), so compare against
  // 50% random flips, which is true noise.
  Rng rng(4);
  const Model noise = with_flipped_bits(deployed().model, 0.5, rng);
  const double acc = noise.accuracy(deployed().data.test);
  EXPECT_GT(acc, 0.30);
  EXPECT_LT(acc, 0.75);  // 2-class chance band
}

TEST(FaultInjectionTest, SingleBitFlipChangesFewPredictions) {
  Rng rng(5);
  const Model& clean = deployed().model;
  Model faulty = with_flipped_bits(clean, 0.0, rng);
  // Flip exactly one F bit via the rebuild helper at a tiny rate until
  // one flip lands.
  Model one_flip = clean;
  for (int attempt = 0; attempt < 100; ++attempt) {
    Rng attempt_rng(100 + attempt);
    one_flip = with_flipped_bits(clean, 0.0005, attempt_rng);
    if (!(one_flip == clean)) break;
  }
  ASSERT_FALSE(one_flip == clean);
  std::size_t changed = 0;
  const auto& test = deployed().data.test;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (one_flip.predict(test.values(i)).label !=
        clean.predict(test.values(i)).label) {
      ++changed;
    }
  }
  EXPECT_LT(changed, test.size() / 10);
}

}  // namespace
}  // namespace univsa::vsa
