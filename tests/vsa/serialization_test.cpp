#include "univsa/vsa/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "univsa/vsa/memory_model.h"

namespace univsa::vsa {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.W = 3;
  c.L = 5;
  c.C = 2;
  c.M = 8;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 6;
  c.Theta = 2;
  return c;
}

TEST(SerializationTest, BytesRoundtripPreservesModel) {
  Rng rng(1);
  const Model m = Model::random(small_config(), rng);
  const auto bytes = ModelIo::to_bytes(m);
  const Model loaded = ModelIo::from_bytes(bytes);
  EXPECT_EQ(m, loaded);
}

TEST(SerializationTest, RoundtripPreservesPredictions) {
  Rng rng(2);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  const Model loaded = ModelIo::from_bytes(ModelIo::to_bytes(m));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint16_t> values(c.features());
    for (auto& v : values) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
    const auto a = m.predict(values);
    const auto b = loaded.predict(values);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.scores, b.scores);
  }
}

TEST(SerializationTest, StreamRoundtrip) {
  Rng rng(3);
  const Model m = Model::random(small_config(), rng);
  std::stringstream ss;
  ModelIo::save(m, ss);
  const Model loaded = ModelIo::load(ss);
  EXPECT_EQ(m, loaded);
}

TEST(SerializationTest, FileRoundtrip) {
  Rng rng(4);
  const Model m = Model::random(small_config(), rng);
  const std::string path = ::testing::TempDir() + "/model.uvsa";
  ModelIo::save_file(m, path);
  const Model loaded = ModelIo::load_file(path);
  EXPECT_EQ(m, loaded);
  std::remove(path.c_str());
}

TEST(SerializationTest, BadMagicRejected) {
  Rng rng(5);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes[0] = 'X';
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, TruncationRejected) {
  Rng rng(6);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, TrailingGarbageRejected) {
  Rng rng(7);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes.push_back(0);
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, CorruptMaskRejected) {
  Rng rng(8);
  const Model m = Model::random(small_config(), rng);
  auto bytes = ModelIo::to_bytes(m);
  // Mask starts after the 8-byte magic, the v2 kind field, and the
  // 9 u64 config fields.
  const std::size_t mask_offset = 8 + 8 + 9 * 8;
  bytes[mask_offset] = 7;  // not 0/1
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, MissingFileThrows) {
  EXPECT_THROW(ModelIo::load_file("/nonexistent/dir/model.uvsa"),
               std::invalid_argument);
}

TEST(SerializationTest, PayloadBytesTracksEquationFive) {
  Rng rng(9);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  const std::size_t payload = ModelIo::payload_bytes(m);
  // Byte-rounded Eq. 5 components.
  const auto ceil_div = [](std::size_t bits) { return (bits + 7) / 8; };
  const std::size_t expected =
      ceil_div(c.M * c.D_H) + ceil_div(c.M * c.D_L) +
      ceil_div(c.O * c.D_H * c.D_K * c.D_K) +
      ceil_div(c.W * c.L * c.O) + ceil_div(c.W * c.L * c.Theta * c.C);
  EXPECT_EQ(payload, expected);
  // Within a byte-rounding margin of the bit-exact Eq. 5 figure.
  EXPECT_NEAR(static_cast<double>(payload),
              static_cast<double>(memory_bits(c)) / 8.0, 5.0);
}

// --- Format versioning (v2 header: magic + kind) -------------------------

// Synthesizes a version-1 file from a v2 buffer: v1 is the same layout
// minus the kind field, stamped "UVSA001\n".
std::vector<std::uint8_t> as_version_one(std::vector<std::uint8_t> bytes) {
  bytes.erase(bytes.begin() + 8, bytes.begin() + 16);  // drop kind u64
  bytes[6] = '1';                                      // "UVSA001\n"
  return bytes;
}

TEST(SerializationVersionTest, WritesVersionTwoMagic) {
  Rng rng(20);
  const auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "UVSA002\n");
}

TEST(SerializationVersionTest, VersionOneFilesLoadForever) {
  Rng rng(21);
  const Model m = Model::random(small_config(), rng);
  const auto v1 = as_version_one(ModelIo::to_bytes(m));
  EXPECT_EQ(ModelIo::peek_kind(v1), ModelIo::Kind::kUniVsa);
  EXPECT_EQ(ModelIo::from_bytes(v1), m);
}

TEST(SerializationVersionTest, FutureVersionRejectedWithClearError) {
  Rng rng(22);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes[6] = '3';  // "UVSA003\n" — newer than this build
  try {
    ModelIo::from_bytes(bytes);
    FAIL() << "expected rejection of a future-version file";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 3"), std::string::npos) << what;
    EXPECT_NE(what.find("newer"), std::string::npos) << what;
  }
  EXPECT_THROW(ModelIo::peek_kind(bytes), std::invalid_argument);
}

TEST(SerializationVersionTest, PeekKindReportsStoredKind) {
  Rng rng(23);
  EXPECT_EQ(ModelIo::peek_kind(
                ModelIo::to_bytes(Model::random(small_config(), rng))),
            ModelIo::Kind::kUniVsa);
  EXPECT_EQ(ModelIo::peek_kind(ModelIo::ldc_to_bytes(
                LdcModel::random(2, 3, 4, 2, 64, rng))),
            ModelIo::Kind::kLdc);
}

TEST(SerializationVersionTest, WrongKindLoaderRejected) {
  Rng rng(24);
  const auto univsa = ModelIo::to_bytes(Model::random(small_config(), rng));
  EXPECT_THROW(ModelIo::ldc_from_bytes(univsa), std::invalid_argument);
  EXPECT_THROW(ModelIo::lehdc_from_bytes(univsa), std::invalid_argument);
  const auto ldc =
      ModelIo::ldc_to_bytes(LdcModel::random(2, 3, 4, 2, 64, rng));
  EXPECT_THROW(ModelIo::from_bytes(ldc), std::invalid_argument);
}

// --- LdcModel / LehdcModel round-trips -----------------------------------

TEST(SerializationLdcTest, BytesRoundtripPreservesModel) {
  Rng rng(30);
  const LdcModel m = LdcModel::random(2, 3, 4, 2, 64, rng);
  EXPECT_EQ(ModelIo::ldc_from_bytes(ModelIo::ldc_to_bytes(m)), m);
}

TEST(SerializationLdcTest, FileRoundtripPreservesPredictions) {
  Rng rng(31);
  const LdcModel m = LdcModel::random(2, 3, 4, 3, 64, rng);
  const std::string path = ::testing::TempDir() + "/model.ldc.uvsa";
  ModelIo::save_ldc_file(m, path);
  const LdcModel loaded = ModelIo::load_ldc_file(path);
  EXPECT_EQ(loaded, m);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint16_t> values(m.features());
    for (auto& v : values) {
      v = static_cast<std::uint16_t>(rng.uniform_index(m.levels()));
    }
    EXPECT_EQ(loaded.predict(values), m.predict(values));
  }
  std::remove(path.c_str());
}

LehdcModel small_lehdc(std::uint64_t seed) {
  const std::size_t windows = 2, length = 3, levels = 4, dim = 64;
  Rng rng(seed);
  auto values = LehdcModel::level_encoded_values(levels, dim, rng);
  auto features = LehdcModel::random_bipolar(windows * length * dim, rng);
  const Tensor classes = Tensor::rand_sign({2, dim}, rng);
  return LehdcModel(windows, length, levels, dim, std::move(values),
                    std::move(features), classes);
}

TEST(SerializationLehdcTest, BytesRoundtripPreservesModel) {
  const LehdcModel m = small_lehdc(40);
  EXPECT_EQ(ModelIo::lehdc_from_bytes(ModelIo::lehdc_to_bytes(m)), m);
}

TEST(SerializationLehdcTest, FileRoundtripPreservesPredictions) {
  const LehdcModel m = small_lehdc(41);
  const std::string path = ::testing::TempDir() + "/model.lehdc.uvsa";
  ModelIo::save_lehdc_file(m, path);
  const LehdcModel loaded = ModelIo::load_lehdc_file(path);
  EXPECT_EQ(loaded, m);
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint16_t> values(2 * 3);
    for (auto& v : values) {
      v = static_cast<std::uint16_t>(rng.uniform_index(4));
    }
    EXPECT_EQ(loaded.predict(values), m.predict(values));
  }
  std::remove(path.c_str());
}

TEST(SerializationLehdcTest, FileSizeMatchesMemoryModelAccounting) {
  // The ±1 int8 lanes are bit-packed on disk, so the file tracks the
  // Table II lehdc_memory_kb() figure — not the 8x inflated RAM layout.
  const LehdcModel m = small_lehdc(43);
  const auto bytes = ModelIo::lehdc_to_bytes(m);
  const std::size_t n = 2 * 3;        // feature positions
  const std::size_t payload_bits =
      static_cast<std::size_t>(lehdc_memory_kb(n, 2, 4, 64) * 8000.0);
  const std::size_t file_bits = bytes.size() * 8;
  EXPECT_GE(file_bits, payload_bits);
  // Header + length fields only on top of the packed payload; the int8
  // RAM layout of V and F alone would add 7x their packed size.
  const std::size_t v_f_bits = (4 + n) * 64;
  EXPECT_LT(file_bits, payload_bits + 2048 + v_f_bits);
}

}  // namespace
}  // namespace univsa::vsa
