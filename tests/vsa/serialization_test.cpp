#include "univsa/vsa/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "univsa/vsa/memory_model.h"

namespace univsa::vsa {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.W = 3;
  c.L = 5;
  c.C = 2;
  c.M = 8;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 6;
  c.Theta = 2;
  return c;
}

TEST(SerializationTest, BytesRoundtripPreservesModel) {
  Rng rng(1);
  const Model m = Model::random(small_config(), rng);
  const auto bytes = ModelIo::to_bytes(m);
  const Model loaded = ModelIo::from_bytes(bytes);
  EXPECT_EQ(m, loaded);
}

TEST(SerializationTest, RoundtripPreservesPredictions) {
  Rng rng(2);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  const Model loaded = ModelIo::from_bytes(ModelIo::to_bytes(m));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint16_t> values(c.features());
    for (auto& v : values) {
      v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
    }
    const auto a = m.predict(values);
    const auto b = loaded.predict(values);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.scores, b.scores);
  }
}

TEST(SerializationTest, StreamRoundtrip) {
  Rng rng(3);
  const Model m = Model::random(small_config(), rng);
  std::stringstream ss;
  ModelIo::save(m, ss);
  const Model loaded = ModelIo::load(ss);
  EXPECT_EQ(m, loaded);
}

TEST(SerializationTest, FileRoundtrip) {
  Rng rng(4);
  const Model m = Model::random(small_config(), rng);
  const std::string path = ::testing::TempDir() + "/model.uvsa";
  ModelIo::save_file(m, path);
  const Model loaded = ModelIo::load_file(path);
  EXPECT_EQ(m, loaded);
  std::remove(path.c_str());
}

TEST(SerializationTest, BadMagicRejected) {
  Rng rng(5);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes[0] = 'X';
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, TruncationRejected) {
  Rng rng(6);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, TrailingGarbageRejected) {
  Rng rng(7);
  auto bytes = ModelIo::to_bytes(Model::random(small_config(), rng));
  bytes.push_back(0);
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, CorruptMaskRejected) {
  Rng rng(8);
  const Model m = Model::random(small_config(), rng);
  auto bytes = ModelIo::to_bytes(m);
  // Mask starts right after the 8-byte magic + 9 u64 config fields.
  const std::size_t mask_offset = 8 + 9 * 8;
  bytes[mask_offset] = 7;  // not 0/1
  EXPECT_THROW(ModelIo::from_bytes(bytes), std::invalid_argument);
}

TEST(SerializationTest, MissingFileThrows) {
  EXPECT_THROW(ModelIo::load_file("/nonexistent/dir/model.uvsa"),
               std::invalid_argument);
}

TEST(SerializationTest, PayloadBytesTracksEquationFive) {
  Rng rng(9);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  const std::size_t payload = ModelIo::payload_bytes(m);
  // Byte-rounded Eq. 5 components.
  const auto ceil_div = [](std::size_t bits) { return (bits + 7) / 8; };
  const std::size_t expected =
      ceil_div(c.M * c.D_H) + ceil_div(c.M * c.D_L) +
      ceil_div(c.O * c.D_H * c.D_K * c.D_K) +
      ceil_div(c.W * c.L * c.O) + ceil_div(c.W * c.L * c.Theta * c.C);
  EXPECT_EQ(payload, expected);
  // Within a byte-rounding margin of the bit-exact Eq. 5 figure.
  EXPECT_NEAR(static_cast<double>(payload),
              static_cast<double>(memory_bits(c)) / 8.0, 5.0);
}

}  // namespace
}  // namespace univsa::vsa
