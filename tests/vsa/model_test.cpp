#include "univsa/vsa/model.h"

#include <gtest/gtest.h>

#include "univsa/vsa/memory_model.h"

namespace univsa::vsa {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 3;
  c.M = 16;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

std::vector<std::uint16_t> random_sample(const ModelConfig& c, Rng& rng) {
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

TEST(ModelTest, RandomModelHasConsistentShapes) {
  Rng rng(1);
  const Model m = Model::random(small_config(), rng);
  EXPECT_EQ(m.mask().size(), 24u);
  EXPECT_EQ(m.value_table_high().size(), 16u);
  EXPECT_EQ(m.value_table_high()[0].size(), 8u);
  EXPECT_EQ(m.value_table_low()[0].size(), 2u);
  EXPECT_EQ(m.kernel_bits().size(), 5u);
  EXPECT_EQ(m.kernel_bits()[0].size(), 9u);
  EXPECT_EQ(m.feature_vectors().size(), 5u);
  EXPECT_EQ(m.feature_vectors()[0].size(), 24u);
  EXPECT_EQ(m.class_vectors().size(), 6u);
}

TEST(ModelTest, ProjectValuesRoutesThroughMask) {
  Rng rng(2);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  Rng sample_rng(3);
  const auto values = random_sample(c, sample_rng);
  const auto volume = m.project_values(values);
  ASSERT_EQ(volume.size(), c.features());

  for (std::size_t i = 0; i < volume.size(); ++i) {
    if (m.mask()[i]) {
      EXPECT_EQ(volume[i].valid, (1u << c.D_H) - 1) << i;
      EXPECT_EQ(volume[i].bits,
                static_cast<std::uint32_t>(
                    m.value_table_high()[values[i]].words()[0]));
    } else {
      EXPECT_EQ(volume[i].valid, (1u << c.D_L) - 1) << i;
      // Lanes above D_L must read 0 (the DVP padding).
      EXPECT_EQ(volume[i].bits & ~volume[i].valid, 0u);
    }
  }
}

TEST(ModelTest, ConvolveRawMatchesNaiveMaskedConvolution) {
  Rng rng(4);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  Rng sample_rng(5);
  const auto values = random_sample(c, sample_rng);
  const auto volume = m.project_values(values);
  const auto raw = m.convolve_raw(volume);

  const long pad = static_cast<long>(c.D_K / 2);
  for (std::size_t o = 0; o < c.O; ++o) {
    for (std::size_t y = 0; y < c.W; ++y) {
      for (std::size_t x = 0; x < c.L; ++x) {
        long long expected = 0;
        for (std::size_t kh = 0; kh < c.D_K; ++kh) {
          for (std::size_t kw = 0; kw < c.D_K; ++kw) {
            const long sy = static_cast<long>(y + kh) - pad;
            const long sx = static_cast<long>(x + kw) - pad;
            if (sy < 0 || sy >= static_cast<long>(c.W) || sx < 0 ||
                sx >= static_cast<long>(c.L)) {
              continue;
            }
            const PackedValue& pv =
                volume[static_cast<std::size_t>(sy) * c.L +
                       static_cast<std::size_t>(sx)];
            for (std::size_t d = 0; d < c.D_H; ++d) {
              if (!((pv.valid >> d) & 1u)) continue;
              const int in = (pv.bits >> d) & 1u ? 1 : -1;
              const int kb =
                  (m.kernel_bits()[o][kh * c.D_K + kw] >> d) & 1u ? 1 : -1;
              expected += in * kb;
            }
          }
        }
        EXPECT_EQ(raw[o][y * c.L + x], expected)
            << "o=" << o << " y=" << y << " x=" << x;
      }
    }
  }
}

TEST(ModelTest, ConvolveBinarizesWithPaperTiebreak) {
  Rng rng(6);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  Rng sample_rng(7);
  const auto volume = m.project_values(random_sample(c, sample_rng));
  const auto raw = m.convolve_raw(volume);
  const auto out = m.convolve(volume);
  for (std::size_t o = 0; o < c.O; ++o) {
    for (std::size_t j = 0; j < c.sample_dim(); ++j) {
      EXPECT_EQ(out[o].get(j), raw[o][j] >= 0 ? 1 : -1);
    }
  }
}

TEST(ModelTest, EncodeChannelsMatchesAccumulatorSemantics) {
  Rng rng(8);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  Rng sample_rng(9);
  const auto conv = m.convolve(m.project_values(random_sample(c, sample_rng)));
  const BitVec s = m.encode_channels(conv);
  for (std::size_t j = 0; j < c.sample_dim(); ++j) {
    long long sum = 0;
    for (std::size_t o = 0; o < c.O; ++o) {
      sum += m.feature_vectors()[o].get(j) * conv[o].get(j);
    }
    EXPECT_EQ(s.get(j), sum >= 0 ? 1 : -1);
  }
}

TEST(ModelTest, SimilaritySumsOverVoters) {
  Rng rng(10);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  BitVec s = BitVec::random(c.sample_dim(), rng);
  const Prediction p = m.similarity(s);
  ASSERT_EQ(p.scores.size(), c.C);
  for (std::size_t cls = 0; cls < c.C; ++cls) {
    long long expected = 0;
    for (std::size_t t = 0; t < c.Theta; ++t) {
      expected += s.dot(m.class_vectors()[t * c.C + cls]);
    }
    EXPECT_EQ(p.scores[cls], expected);
  }
  // Label is the argmax.
  const auto best =
      std::max_element(p.scores.begin(), p.scores.end()) - p.scores.begin();
  EXPECT_EQ(p.label, static_cast<int>(best));
}

TEST(ModelTest, PredictIsStageComposition) {
  Rng rng(11);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  Rng sample_rng(12);
  const auto values = random_sample(c, sample_rng);
  const Prediction direct = m.predict(values);
  const Prediction staged =
      m.similarity(m.encode_channels(m.convolve(m.project_values(values))));
  EXPECT_EQ(direct.label, staged.label);
  EXPECT_EQ(direct.scores, staged.scores);
}

TEST(ModelTest, Figure2ToyExample) {
  // Fig. 2's toy setting: N = 3 features, M = 2 values, C = 2 classes.
  // We realize it with a 1×3 grid, 1 conv channel with a +1 center-only
  // contribution (via mask/kernel choices the arithmetic is checkable by
  // hand): here we validate Eq. 1 + Eq. 2 semantics end to end on an
  // explicitly constructed model.
  ModelConfig c;
  c.W = 1;
  c.L = 3;
  c.C = 2;
  c.M = 2;
  c.D_H = 1;
  c.D_L = 1;
  c.D_K = 1;
  c.O = 1;
  c.Theta = 1;

  // V: value 0 -> -1, value 1 -> +1 (D = 1).
  Tensor v_high = Tensor::from_data({2, 1}, {-1.0f, 1.0f});
  Tensor v_low = v_high;
  // K: single +1 tap — conv output equals the value vector lane.
  Tensor kernels = Tensor::from_data({1, 1}, {1.0f});
  // F: (+1, -1, +1) over the three positions.
  Tensor features = Tensor::from_data({1, 3}, {1.0f, -1.0f, 1.0f});
  // Class vectors: c0 = (+1,+1,+1), c1 = (-1,-1,-1).
  Tensor classes =
      Tensor::from_data({2, 3}, {1.0f, 1.0f, 1.0f, -1.0f, -1.0f, -1.0f});

  const Model m(c, {1, 1, 1}, v_high, v_low, kernels, features, classes);

  // x = (1, 0, 1): values (+1, -1, +1); conv = same; encoding binds with
  // F: s = (+1·+1, -1·-1, +1·+1) = (+1, +1, +1).
  const BitVec s = m.encode({1, 0, 1});
  EXPECT_EQ(s.to_bipolar(), (std::vector<int>{1, 1, 1}));
  const Prediction p = m.predict({1, 0, 1});
  EXPECT_EQ(p.scores[0], 3);   // dot with all-ones
  EXPECT_EQ(p.scores[1], -3);
  EXPECT_EQ(p.label, 0);

  // x = (0, 1, 0) gives s = (-1, -1, -1) -> class 1.
  EXPECT_EQ(m.predict({0, 1, 0}).label, 1);
}

TEST(ModelTest, TieBreaksToLowestClassIndex) {
  ModelConfig c;
  c.W = 1;
  c.L = 2;
  c.C = 2;
  c.M = 2;
  c.D_H = 1;
  c.D_L = 1;
  c.D_K = 1;
  c.O = 1;
  c.Theta = 1;
  Tensor v = Tensor::from_data({2, 1}, {-1.0f, 1.0f});
  Tensor kernels = Tensor::from_data({1, 1}, {1.0f});
  Tensor features = Tensor::from_data({1, 2}, {1.0f, 1.0f});
  // Identical class vectors -> identical scores -> label 0.
  Tensor classes = Tensor::from_data({2, 2}, {1.0f, -1.0f, 1.0f, -1.0f});
  const Model m(c, {1, 1}, v, v, kernels, features, classes);
  EXPECT_EQ(m.predict({0, 1}).label, 0);
}

TEST(ModelTest, HammingMetricAgreesWithDotProductRanking) {
  // Sec. II-C: dot = D − 2·hamming, so argmax(dot) == argmin(hamming).
  Rng rng(21);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto values = random_sample(c, rng);
    const BitVec s = m.encode(values);
    const Prediction dot = m.similarity(s);
    const Prediction ham = m.similarity_hamming(s);
    EXPECT_EQ(dot.label, ham.label);
    // Exact linear relation per class, accumulated over Θ voters.
    for (std::size_t cls = 0; cls < c.C; ++cls) {
      EXPECT_EQ(dot.scores[cls],
                static_cast<long long>(c.Theta * c.sample_dim()) -
                    2 * ham.scores[cls]);
    }
  }
}

TEST(ModelTest, ValidatesInputs) {
  Rng rng(13);
  const ModelConfig c = small_config();
  const Model m = Model::random(c, rng);
  std::vector<std::uint16_t> bad_count(c.features() - 1, 0);
  EXPECT_THROW(m.predict(bad_count), std::invalid_argument);
  std::vector<std::uint16_t> bad_level(c.features(), 0);
  bad_level[0] = static_cast<std::uint16_t>(c.M);
  EXPECT_THROW(m.predict(bad_level), std::invalid_argument);
}

TEST(ModelTest, ConstructorValidatesShapes) {
  const ModelConfig c = small_config();
  Rng rng(14);
  const std::size_t kk = c.D_K * c.D_K;
  Tensor v_high = Tensor::rand_sign({c.M, c.D_H}, rng);
  Tensor v_low = Tensor::rand_sign({c.M, c.D_L}, rng);
  Tensor kernels = Tensor::rand_sign({c.O, c.D_H * kk}, rng);
  Tensor features = Tensor::rand_sign({c.O, c.sample_dim()}, rng);
  Tensor classes = Tensor::rand_sign({c.Theta * c.C, c.sample_dim()}, rng);
  std::vector<std::uint8_t> mask(c.features(), 1);

  EXPECT_NO_THROW(Model(c, mask, v_high, v_low, kernels, features, classes));
  // Non-bipolar tensor rejected.
  Tensor bad = v_high;
  bad.at(0, 0) = 0.5f;
  EXPECT_THROW(Model(c, mask, bad, v_low, kernels, features, classes),
               std::invalid_argument);
  // Wrong mask size rejected.
  std::vector<std::uint8_t> short_mask(c.features() - 1, 1);
  EXPECT_THROW(
      Model(c, short_mask, v_high, v_low, kernels, features, classes),
      std::invalid_argument);
}

TEST(ModelTest, EqualityDetectsDifferences) {
  Rng rng(15);
  const Model a = Model::random(small_config(), rng);
  Model b = a;
  EXPECT_EQ(a, b);
  Rng rng2(16);
  const Model c = Model::random(small_config(), rng2);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace univsa::vsa
