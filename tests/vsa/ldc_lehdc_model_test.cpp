#include <gtest/gtest.h>

#include "univsa/vsa/ldc_model.h"
#include "univsa/vsa/lehdc_model.h"

namespace univsa::vsa {
namespace {

TEST(LdcModelTest, EncodeMatchesEquationOne) {
  // Build an LdcModel from known tensors and cross-check Eq. 1 naively.
  const std::size_t dim = 16;
  Rng rng(1);
  const Tensor values_t = Tensor::rand_sign({4, dim}, rng);
  const Tensor features_t = Tensor::rand_sign({6, dim}, rng);
  const Tensor classes_t = Tensor::rand_sign({2, dim}, rng);
  const LdcModel m(2, 3, values_t, features_t, classes_t);

  Rng sample_rng(2);
  std::vector<std::uint16_t> values(6);
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(sample_rng.uniform_index(4));
  }
  const BitVec s = m.encode(values);
  ASSERT_EQ(s.size(), dim);
  for (std::size_t j = 0; j < dim; ++j) {
    float sum = 0.0f;
    for (std::size_t i = 0; i < 6; ++i) {
      sum += features_t.at(i, j) * values_t.at(values[i], j);
    }
    EXPECT_EQ(s.get(j), sum >= 0.0f ? 1 : -1) << "lane " << j;
  }
  EXPECT_EQ(m.encode(values), s);  // deterministic
}

TEST(LdcModelTest, MajorityOfIdenticalBindingsIsThatBinding) {
  // If every feature vector is all-ones, encode(x) = sgn(Σ v_{x_i}).
  const std::size_t dim = 8;
  Tensor values = Tensor::from_data(
      {2, dim}, {1, 1, 1, 1, 1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1, -1});
  Tensor features = Tensor::full({3, dim}, 1.0f);
  Tensor classes = Tensor::full({2, dim}, 1.0f);
  for (std::size_t j = 0; j < dim; ++j) classes.at(1, j) = -1.0f;
  const LdcModel m(1, 3, values, features, classes);

  // Two features with value 0 (all +1), one with value 1 (all -1):
  // sums = +1 -> s all +1 -> class 0.
  EXPECT_EQ(m.predict({0, 0, 1}), 0);
  // Majority -1 -> class 1.
  EXPECT_EQ(m.predict({1, 1, 0}), 1);
}

TEST(LdcModelTest, AccuracyOnDesignedDataset) {
  const std::size_t dim = 8;
  Tensor values = Tensor::from_data(
      {2, dim}, {1, 1, 1, 1, 1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1, -1});
  Tensor features = Tensor::full({3, dim}, 1.0f);
  Tensor classes = Tensor::full({2, dim}, 1.0f);
  for (std::size_t j = 0; j < dim; ++j) classes.at(1, j) = -1.0f;
  const LdcModel m(1, 3, values, features, classes);

  data::Dataset d(1, 3, 2, 2);
  d.add({0, 0, 0}, 0);
  d.add({0, 0, 1}, 0);
  d.add({1, 1, 1}, 1);
  d.add({1, 1, 0}, 1);
  EXPECT_EQ(m.accuracy(d), 1.0);
}

TEST(LdcModelTest, ValidatesGeometry) {
  Rng rng(3);
  Tensor values = Tensor::rand_sign({4, 16}, rng);
  Tensor features = Tensor::rand_sign({5, 16}, rng);  // != W·L = 6
  Tensor classes = Tensor::rand_sign({2, 16}, rng);
  EXPECT_THROW(LdcModel(2, 3, values, features, classes),
               std::invalid_argument);
}

TEST(LdcModelTest, ValueLevelRangeChecked) {
  Rng rng(4);
  const LdcModel m = LdcModel::random(1, 2, 4, 2, 8, rng);
  EXPECT_THROW(m.predict({0, 4}), std::invalid_argument);
  EXPECT_THROW(m.predict({0}), std::invalid_argument);
}

TEST(LehdcModelTest, EncodeMatchesNaivePerLaneAccumulation) {
  const std::size_t dim = 32;
  Rng rng(5);
  auto v = LehdcModel::random_bipolar(4 * dim, rng);
  auto f = LehdcModel::random_bipolar(6 * dim, rng);
  Tensor classes = Tensor::rand_sign({2, dim}, rng);
  const LehdcModel m(2, 3, 4, dim, v, f, classes);

  const std::vector<std::uint16_t> values = {0, 3, 1, 2, 0, 1};
  const BitVec s = m.encode(values);
  for (std::size_t j = 0; j < dim; ++j) {
    int sum = 0;
    for (std::size_t i = 0; i < 6; ++i) {
      sum += static_cast<int>(f[i * dim + j]) *
             v[static_cast<std::size_t>(values[i]) * dim + j];
    }
    EXPECT_EQ(s.get(j), sum >= 0 ? 1 : -1) << "lane " << j;
  }
}

TEST(LehdcModelTest, PredictPicksNearestClassVector) {
  const std::size_t dim = 16;
  Rng rng(6);
  auto v = LehdcModel::random_bipolar(2 * dim, rng);
  auto f = LehdcModel::random_bipolar(2 * dim, rng);
  // Class 0 vector = the encoding of a known sample; class 1 = negation.
  Tensor classes({2, dim});
  {
    const LehdcModel probe(1, 2, 2, dim, v, f,
                           Tensor::rand_sign({2, dim}, rng));
    const BitVec s = probe.encode({0, 1});
    for (std::size_t j = 0; j < dim; ++j) {
      classes.at(0, j) = static_cast<float>(s.get(j));
      classes.at(1, j) = -static_cast<float>(s.get(j));
    }
  }
  const LehdcModel m(1, 2, 2, dim, v, f, classes);
  EXPECT_EQ(m.predict({0, 1}), 0);
}

TEST(LehdcModelTest, ValidatesLaneCounts) {
  Rng rng(7);
  auto v = LehdcModel::random_bipolar(4 * 8, rng);
  auto f = LehdcModel::random_bipolar(5 * 8, rng);  // wrong: N = 6
  Tensor classes = Tensor::rand_sign({2, 8}, rng);
  EXPECT_THROW(LehdcModel(2, 3, 4, 8, v, f, classes),
               std::invalid_argument);
}

TEST(LehdcModelTest, LevelEncodingCorrelationFallsOffLinearly) {
  Rng rng(11);
  const std::size_t levels = 64;
  const std::size_t dim = 4096;
  const auto lanes = LehdcModel::level_encoded_values(levels, dim, rng);
  const auto corr = [&](std::size_t a, std::size_t b) {
    long long dot = 0;
    for (std::size_t j = 0; j < dim; ++j) {
      dot += static_cast<long long>(lanes[a * dim + j]) *
             lanes[b * dim + j];
    }
    return static_cast<double>(dot) / static_cast<double>(dim);
  };
  // Adjacent levels nearly identical; endpoints ~orthogonal; halfway
  // level correlation ~0.5 with level 0.
  EXPECT_GT(corr(0, 1), 0.95);
  EXPECT_NEAR(corr(0, levels - 1), 0.0, 0.05);
  EXPECT_NEAR(corr(0, levels / 2), 0.5, 0.06);
  // Monotone in distance from level 0.
  EXPECT_GT(corr(0, 8), corr(0, 16));
  EXPECT_GT(corr(0, 16), corr(0, 32));
}

TEST(LehdcModelTest, LevelEncodingLanesAreBipolar) {
  Rng rng(12);
  const auto lanes = LehdcModel::level_encoded_values(8, 128, rng);
  ASSERT_EQ(lanes.size(), 8u * 128u);
  for (const auto x : lanes) {
    EXPECT_TRUE(x == 1 || x == -1);
  }
}

TEST(LehdcModelTest, LevelEncodingRejectsDegenerate) {
  Rng rng(13);
  EXPECT_THROW(LehdcModel::level_encoded_values(1, 16, rng),
               std::invalid_argument);
}

TEST(LehdcModelTest, RejectsNonBipolarLanes) {
  Rng rng(8);
  auto v = LehdcModel::random_bipolar(4 * 8, rng);
  auto f = LehdcModel::random_bipolar(6 * 8, rng);
  v[3] = 0;
  Tensor classes = Tensor::rand_sign({2, 8}, rng);
  EXPECT_THROW(LehdcModel(2, 3, 4, 8, v, f, classes),
               std::invalid_argument);
}

}  // namespace
}  // namespace univsa::vsa
