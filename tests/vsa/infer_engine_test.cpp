// Property tests for the batched inference engine: every engine output
// must be bit-identical to Model::predict_reference (the original
// per-sample scalar pipeline) over random models spanning the edge
// configurations, single- and multi-threaded, and the hardware
// functional simulator must stay bit-exact against the same models.
#include "univsa/vsa/infer_engine.h"

#include <gtest/gtest.h>

#include "univsa/hw/functional_sim.h"
#include "univsa/vsa/model.h"

namespace univsa::vsa {
namespace {

struct EngineCase {
  const char* name;
  ModelConfig config;
};

EngineCase make_case(const char* name, std::size_t w, std::size_t l,
                     std::size_t classes, std::size_t m, std::size_t d_h,
                     std::size_t d_l, std::size_t d_k, std::size_t o,
                     std::size_t theta) {
  EngineCase e;
  e.name = name;
  e.config.W = w;
  e.config.L = l;
  e.config.C = classes;
  e.config.M = m;
  e.config.D_H = d_h;
  e.config.D_L = d_l;
  e.config.D_K = d_k;
  e.config.O = o;
  e.config.Theta = theta;
  return e;
}

std::vector<std::uint16_t> random_sample(const ModelConfig& c, Rng& rng) {
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

data::Dataset random_dataset(const ModelConfig& c, std::size_t n, Rng& rng) {
  data::Dataset ds(c.W, c.L, c.C, c.M);
  for (std::size_t i = 0; i < n; ++i) {
    ds.add(random_sample(c, rng),
           static_cast<int>(rng.uniform_index(c.C)));
  }
  return ds;
}

class InferEngineTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(InferEngineTest, PredictBatchIsBitIdenticalToReference) {
  const EngineCase& e = GetParam();
  Rng rng(42);
  const Model m = Model::random(e.config, rng);
  InferEngine engine(m);

  std::vector<std::vector<std::uint16_t>> samples;
  for (int i = 0; i < 24; ++i) samples.push_back(random_sample(e.config, rng));

  std::vector<Prediction> serial;
  std::vector<Prediction> parallel;
  engine.predict_batch(samples, serial, /*parallel=*/false);
  engine.predict_batch(samples, parallel, /*parallel=*/true);
  ASSERT_EQ(serial.size(), samples.size());
  ASSERT_EQ(parallel.size(), samples.size());

  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Prediction ref = m.predict_reference(samples[i]);
    EXPECT_EQ(serial[i].label, ref.label) << e.name << " sample " << i;
    EXPECT_EQ(serial[i].scores, ref.scores) << e.name << " sample " << i;
    EXPECT_EQ(parallel[i].label, ref.label) << e.name << " sample " << i;
    EXPECT_EQ(parallel[i].scores, ref.scores) << e.name << " sample " << i;
  }
}

TEST_P(InferEngineTest, EncodeBatchMatchesReferenceEncoding) {
  const EngineCase& e = GetParam();
  Rng rng(7);
  const Model m = Model::random(e.config, rng);
  InferEngine engine(m);

  std::vector<std::vector<std::uint16_t>> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(random_sample(e.config, rng));

  std::vector<BitVec> encoded;
  engine.encode_batch(samples, encoded);
  ASSERT_EQ(encoded.size(), samples.size());

  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Reference stages: raw conv -> sign -> bit-sliced bundle.
    const auto raw = m.convolve_raw(m.project_values(samples[i]));
    std::vector<BitVec> conv;
    for (const auto& channel : raw) {
      BitVec u(channel.size());
      for (std::size_t j = 0; j < channel.size(); ++j) {
        u.set(j, channel[j] >= 0 ? 1 : -1);
      }
      conv.push_back(std::move(u));
    }
    EXPECT_EQ(encoded[i], m.encode_channels(conv)) << e.name << " " << i;
    EXPECT_EQ(encoded[i], m.encode(samples[i])) << e.name << " " << i;
  }
}

TEST_P(InferEngineTest, StageIntoVariantsMatchAllocatingWrappers) {
  const EngineCase& e = GetParam();
  Rng rng(13);
  const Model m = Model::random(e.config, rng);
  const auto values = random_sample(e.config, rng);

  std::vector<PackedValue> volume;
  m.project_values_into(values, volume);
  const auto wrapped = m.project_values(values);
  ASSERT_EQ(volume.size(), wrapped.size());
  for (std::size_t i = 0; i < volume.size(); ++i) {
    EXPECT_EQ(volume[i].bits, wrapped[i].bits);
    EXPECT_EQ(volume[i].valid, wrapped[i].valid);
  }

  InferScratch s(e.config);
  m.convolve_into(volume, s);
  const auto conv = m.convolve(volume);
  const auto raw = m.convolve_raw(volume);
  for (std::size_t o = 0; o < e.config.O; ++o) {
    for (std::size_t j = 0; j < e.config.sample_dim(); ++j) {
      const int fast =
          (s.conv_words[o * s.words_per_channel + j / 64] >> (j % 64)) & 1
              ? 1
              : -1;
      EXPECT_EQ(fast, conv[o].get(j)) << e.name;
      EXPECT_EQ(fast, raw[o][j] >= 0 ? 1 : -1) << e.name;
    }
  }

  m.encode_into(s);
  EXPECT_EQ(s.sample, m.encode_channels(conv)) << e.name;

  Prediction fused;
  m.similarity_into(s.sample, fused);
  const Prediction wrapped_sim = m.similarity(s.sample);
  EXPECT_EQ(fused.label, wrapped_sim.label) << e.name;
  EXPECT_EQ(fused.scores, wrapped_sim.scores) << e.name;
}

TEST_P(InferEngineTest, AccuracyMatchesReferenceLoop) {
  const EngineCase& e = GetParam();
  Rng rng(21);
  const Model m = Model::random(e.config, rng);
  const data::Dataset ds = random_dataset(e.config, 40, rng);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (m.predict_reference(ds.values(i)).label == ds.label(i)) ++correct;
  }
  const double expected =
      static_cast<double>(correct) / static_cast<double>(ds.size());

  InferEngine engine(m);
  EXPECT_DOUBLE_EQ(engine.accuracy(ds, /*parallel=*/false), expected);
  EXPECT_DOUBLE_EQ(engine.accuracy(ds, /*parallel=*/true), expected);
  // Model::accuracy routes through the engine.
  EXPECT_DOUBLE_EQ(m.accuracy(ds), expected);
}

TEST_P(InferEngineTest, FunctionalSimStaysBitExact) {
  const EngineCase& e = GetParam();
  Rng rng(33);
  const Model m = Model::random(e.config, rng);
  InferEngine engine(m);
  const hw::Accelerator accel(m);
  for (int trial = 0; trial < 3; ++trial) {
    const auto values = random_sample(e.config, rng);
    const hw::RunTrace trace = accel.run(values);
    const Prediction& p = engine.predict(values);
    EXPECT_EQ(trace.prediction.label, p.label) << e.name;
    EXPECT_EQ(trace.prediction.scores, p.scores) << e.name;
    EXPECT_EQ(trace.sample_vector, engine.encode(values)) << e.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InferEngineTest,
    ::testing::Values(
        make_case("base", 4, 6, 3, 16, 8, 2, 3, 5, 2),
        // Full 32-lane value vectors on both tables (the D_L shift UB).
        make_case("full_lanes", 3, 5, 2, 8, 32, 32, 3, 4, 1),
        make_case("high_lanes_low2", 3, 5, 2, 8, 32, 2, 3, 4, 2),
        // Kernel size extremes, including a kernel wider than the grid.
        make_case("pointwise", 4, 5, 3, 8, 4, 2, 1, 6, 1),
        make_case("wide_kernel", 2, 9, 2, 8, 4, 2, 5, 3, 1),
        // Many voters and an even/odd channel-count majority.
        make_case("voters", 3, 5, 4, 8, 4, 2, 3, 7, 3),
        make_case("single_channel", 3, 4, 2, 4, 4, 1, 3, 1, 1),
        // Sample dim exactly on a 64-bit word boundary, O past a power
        // of two (forces an extra bit-sliced counter plane).
        make_case("word_boundary", 8, 8, 2, 4, 4, 2, 3, 65, 1)),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.name;
    });

TEST(InferEngineTest2, SingleSamplePredictReusesArenaZero) {
  Rng rng(55);
  ModelConfig c = make_case("", 4, 6, 3, 16, 8, 2, 3, 5, 2).config;
  const Model m = Model::random(c, rng);
  InferEngine engine(m);
  EXPECT_GE(engine.arena_count(), 1u);
  const auto a = random_sample(c, rng);
  const auto b = random_sample(c, rng);
  const Prediction ra = engine.predict(a);  // copy before reuse
  EXPECT_EQ(ra.scores, m.predict_reference(a).scores);
  const Prediction rb = engine.predict(b);
  EXPECT_EQ(rb.scores, m.predict_reference(b).scores);
}

TEST(InferEngineTest2, RejectsGeometryMismatch) {
  Rng rng(56);
  ModelConfig c = make_case("", 4, 6, 3, 16, 8, 2, 3, 5, 1).config;
  const Model m = Model::random(c, rng);
  InferEngine engine(m);
  data::Dataset wrong(c.W + 1, c.L, c.C, c.M);
  wrong.add(std::vector<std::uint16_t>((c.W + 1) * c.L, 0), 0);
  EXPECT_THROW(engine.accuracy(wrong), std::invalid_argument);
  std::vector<Prediction> out;
  EXPECT_THROW(engine.predict_batch(wrong, out), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::vsa
