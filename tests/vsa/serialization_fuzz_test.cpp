// Robustness of the .uvsa loader against corrupted input: any byte-level
// damage must surface as std::invalid_argument (or deserialize to a
// different-but-valid model when the flipped bit lands in a packed
// payload word) — never crash, hang, or violate invariants.
#include <gtest/gtest.h>

#include "univsa/vsa/serialization.h"

namespace univsa::vsa {
namespace {

ModelConfig fuzz_config() {
  ModelConfig c;
  c.W = 3;
  c.L = 4;
  c.C = 2;
  c.M = 8;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 3;
  c.Theta = 1;
  return c;
}

class SerializationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationFuzzTest, SingleByteCorruptionNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Model m = Model::random(fuzz_config(), rng);
  const auto clean = ModelIo::to_bytes(m);

  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = clean;
    const std::size_t pos = rng.uniform_index(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    try {
      const Model loaded = ModelIo::from_bytes(bytes);
      // If it parsed, it must be a self-consistent model that can run.
      std::vector<std::uint16_t> probe(loaded.config().features(), 0);
      const Prediction p = loaded.predict(probe);
      EXPECT_LT(static_cast<std::size_t>(p.label), loaded.config().C);
    } catch (const std::invalid_argument&) {
      // Expected path for header/structure damage.
    }
  }
}

TEST_P(SerializationFuzzTest, TruncationAtEveryPrefixLengthIsRejected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Model m = Model::random(fuzz_config(), rng);
  const auto clean = ModelIo::to_bytes(m);
  // Every strict prefix must throw (stride 7 keeps the test quick).
  for (std::size_t len = 0; len < clean.size(); len += 7) {
    std::vector<std::uint8_t> prefix(clean.begin(),
                                     clean.begin() + static_cast<long>(len));
    EXPECT_THROW(ModelIo::from_bytes(prefix), std::invalid_argument)
        << "prefix length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Values(1, 2, 3));

TEST(SerializationFuzzTest2, GarbageBuffersAreRejected) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(512));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    EXPECT_THROW(ModelIo::from_bytes(garbage), std::invalid_argument);
  }
}

}  // namespace
}  // namespace univsa::vsa
