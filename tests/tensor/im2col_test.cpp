#include "univsa/tensor/im2col.h"

#include <gtest/gtest.h>

#include "univsa/common/rng.h"

namespace univsa {
namespace {

/// Direct "same"-padded convolution for reference.
Tensor naive_conv(const Tensor& input, const Tensor& kernels,
                  std::size_t k) {
  const std::size_t channels = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t out_ch = kernels.dim(0);
  const long pad = static_cast<long>(k / 2);
  Tensor out({out_ch, h, w});
  for (std::size_t o = 0; o < out_ch; ++o) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        double acc = 0.0;
        for (std::size_t c = 0; c < channels; ++c) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            for (std::size_t kw = 0; kw < k; ++kw) {
              const long sy = static_cast<long>(y + kh) - pad;
              const long sx = static_cast<long>(x + kw) - pad;
              if (sy < 0 || sy >= static_cast<long>(h) || sx < 0 ||
                  sx >= static_cast<long>(w)) {
                continue;
              }
              acc += kernels.at(o, (c * k + kh) * k + kw) *
                     input.at(c, static_cast<std::size_t>(sy),
                              static_cast<std::size_t>(sx));
            }
          }
        }
        out.at(o, y, x) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

TEST(Im2colTest, ShapeIsCkkByHw) {
  const Tensor input({3, 5, 7});
  const Tensor cols = im2col(input, 3);
  EXPECT_EQ(cols.dim(0), 3u * 9u);
  EXPECT_EQ(cols.dim(1), 35u);
}

TEST(Im2colTest, CenterTapIsIdentity) {
  Rng rng(1);
  const Tensor input = Tensor::randn({2, 4, 4}, rng);
  const Tensor cols = im2col(input, 3);
  // Row (c, kh=1, kw=1) must reproduce channel c verbatim.
  for (std::size_t c = 0; c < 2; ++c) {
    const std::size_t row = c * 9 + 4;
    for (std::size_t p = 0; p < 16; ++p) {
      EXPECT_EQ(cols.at(row, p), input.flat()[c * 16 + p]);
    }
  }
}

TEST(Im2colTest, BordersAreZeroPadded) {
  const Tensor input = Tensor::full({1, 3, 3}, 1.0f);
  const Tensor cols = im2col(input, 3);
  // Row (kh=0, kw=0) looks up (-1, -1) offsets: position (0,0) is padding.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  // Interior position (1,1) reads (0,0) = 1.
  EXPECT_EQ(cols.at(0, 4), 1.0f);
}

TEST(Im2colTest, RejectsEvenKernel) {
  const Tensor input({1, 3, 3});
  EXPECT_THROW(im2col(input, 2), std::invalid_argument);
}

TEST(Im2colTest, RejectsWrongRank) {
  const Tensor input({3, 3});
  EXPECT_THROW(im2col(input, 3), std::invalid_argument);
}

class ConvLoweringTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(ConvLoweringTest, GemmOverColumnsMatchesDirectConvolution) {
  const auto [channels, h, w, out_ch, k] = GetParam();
  Rng rng(channels * 100 + h * 10 + w + out_ch + k);
  const Tensor input = Tensor::randn({channels, h, w}, rng);
  const Tensor kernels = Tensor::randn({out_ch, channels * k * k}, rng);

  const Tensor cols = im2col(input, k);
  const Tensor lowered = kernels.matmul(cols);  // (O, HW)
  const Tensor direct = naive_conv(input, kernels, k);

  for (std::size_t o = 0; o < out_ch; ++o) {
    for (std::size_t p = 0; p < h * w; ++p) {
      EXPECT_NEAR(lowered.at(o, p), direct.flat()[o * h * w + p], 1e-3f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvLoweringTest,
    ::testing::Values(std::make_tuple(1, 3, 3, 1, 3),
                      std::make_tuple(2, 4, 5, 3, 3),
                      std::make_tuple(4, 6, 6, 2, 5),
                      std::make_tuple(8, 5, 9, 4, 3),
                      std::make_tuple(3, 7, 4, 5, 5)));

TEST(Col2imTest, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property the conv backward pass relies on.
  Rng rng(9);
  const std::size_t channels = 3;
  const std::size_t h = 5;
  const std::size_t w = 6;
  const std::size_t k = 3;
  const Tensor x = Tensor::randn({channels, h, w}, rng);
  const Tensor y = Tensor::randn({channels * k * k, h * w}, rng);

  const Tensor cx = im2col(x, k);
  const Tensor aty = col2im(y, channels, h, w, k);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cx.size(); ++i) {
    lhs += static_cast<double>(cx.flat()[i]) * y.flat()[i];
  }
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.flat()[i]) * aty.flat()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2imTest, ShapeValidation) {
  const Tensor y({9, 12});
  EXPECT_THROW(col2im(y, 2, 3, 4, 3), std::invalid_argument);  // C*K*K=18
  EXPECT_NO_THROW(col2im(y, 1, 3, 4, 3));
}

}  // namespace
}  // namespace univsa
