#include "univsa/tensor/tensor.h"

#include <gtest/gtest.h>

namespace univsa {
namespace {

TEST(TensorTest, ZerosHasShapeAndZeroData) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (const auto v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(TensorTest, RejectsRankFive) {
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(TensorTest, FullFillsValue) {
  const Tensor t = Tensor::full({4}, 2.5f);
  for (const auto v : t.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f, 2.0f}),
               std::invalid_argument);
  const Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(TensorTest, MultiIndexAccessorsAreRowMajor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  Tensor q({2, 2, 2, 2});
  q.at(1, 0, 1, 0) = 3.0f;
  EXPECT_EQ(q[1 * 8 + 0 * 4 + 1 * 2 + 0], 3.0f);
}

TEST(TensorTest, AccessorRankChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(t.at(2, 0), std::invalid_argument);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  const Tensor b = Tensor::from_data({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[1], 22.0f);
  a.sub_(b);
  EXPECT_EQ(a[1], 2.0f);
  a.mul_(2.0f);
  EXPECT_EQ(a[2], 6.0f);
  a.mul_(b);
  EXPECT_EQ(a[0], 20.0f);
}

TEST(TensorTest, SumAndAbsMax) {
  const Tensor t = Tensor::from_data({4}, {1, -5, 3, -2});
  EXPECT_EQ(t.sum(), -3.0f);
  EXPECT_EQ(t.abs_max(), 5.0f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(3);
  const Tensor t = Tensor::randn({10000}, rng, 2.0f);
  double sum = 0.0;
  double sum2 = 0.0;
  for (const auto v : t.flat()) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
  EXPECT_NEAR(sum2 / 10000.0, 4.0, 0.3);
}

TEST(TensorTest, RandSignIsBipolar) {
  Rng rng(4);
  const Tensor t = Tensor::rand_sign({1000}, rng);
  int pos = 0;
  for (const auto v : t.flat()) {
    ASSERT_TRUE(v == 1.0f || v == -1.0f);
    if (v > 0) ++pos;
  }
  EXPECT_GT(pos, 400);
  EXPECT_LT(pos, 600);
}

TEST(TensorTest, MatmulMatchesHandComputed) {
  const Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = a.matmul(b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatmulTransposedEquivalence) {
  Rng rng(5);
  const Tensor a = Tensor::randn({4, 6}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  // a · bᵀ computed two ways.
  Tensor bt({6, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 6; ++j) bt.at(j, i) = b.at(i, j);
  }
  EXPECT_TRUE(allclose(a.matmul_transposed(b), a.matmul(bt), 1e-4f));
}

TEST(TensorTest, TransposedMatmulEquivalence) {
  Rng rng(6);
  const Tensor a = Tensor::randn({6, 4}, rng);
  const Tensor b = Tensor::randn({6, 5}, rng);
  Tensor at({4, 6});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  }
  EXPECT_TRUE(allclose(a.transposed_matmul(b), at.matmul(b), 1e-4f));
}

TEST(TensorTest, MatmulShapeMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(TensorTest, SignTensorUsesPaperTiebreak) {
  const Tensor t = Tensor::from_data({4}, {0.0f, -0.0f, 2.0f, -3.0f});
  const Tensor s = sign_tensor(t);
  EXPECT_EQ(s[0], 1.0f);
  EXPECT_EQ(s[1], 1.0f);  // -0.0f >= 0
  EXPECT_EQ(s[2], 1.0f);
  EXPECT_EQ(s[3], -1.0f);
}

TEST(TensorTest, AllcloseDetectsShapeAndValueDiffs) {
  const Tensor a = Tensor::from_data({2}, {1.0f, 2.0f});
  const Tensor b = Tensor::from_data({2}, {1.0f, 2.00001f});
  const Tensor c = Tensor::from_data({1, 2}, {1.0f, 2.0f});
  EXPECT_TRUE(allclose(a, b, 1e-3f));
  EXPECT_FALSE(allclose(a, b, 1e-7f));
  EXPECT_FALSE(allclose(a, c));
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "(2, 3)");
}

}  // namespace
}  // namespace univsa
