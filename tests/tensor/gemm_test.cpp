#include "univsa/tensor/gemm.h"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "univsa/common/rng.h"
#include "univsa/common/thread_pool.h"

namespace univsa {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void naive_nn(std::size_t m, std::size_t n, std::size_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void naive_nt(std::size_t m, std::size_t n, std::size_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[j * k + p];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void naive_tn(std::size_t m, std::size_t n, std::size_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-3f) << "at index " << i;
  }
}

using Shape = std::tuple<std::size_t, std::size_t, std::size_t>;

class GemmShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapeTest, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 131 + n * 7 + k);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c.data());
  naive_nn(m, n, k, a, b, expected);
  expect_close(c, expected);
}

TEST_P(GemmShapeTest, NtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 151 + n * 11 + k);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(n * k, rng);
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kNT, m, n, k, a.data(), b.data(), c.data());
  naive_nt(m, n, k, a, b, expected);
  expect_close(c, expected);
}

TEST_P(GemmShapeTest, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 173 + n * 13 + k);
  const auto a = random_vec(k * m, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kTN, m, n, k, a.data(), b.data(), c.data());
  naive_tn(m, n, k, a, b, expected);
  expect_close(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4}, Shape{7, 5, 3},
                      Shape{16, 16, 16}, Shape{33, 17, 65},
                      Shape{64, 100, 72},
                      // Prime dims that straddle every tile boundary
                      // (MR=4, NR=16, MC=64, KC=256).
                      Shape{5, 17, 257}, Shape{67, 31, 259},
                      // k spanning multiple KC blocks exercises the
                      // accumulate-into-C inner path.
                      Shape{3, 19, 521},
                      // Large enough to take the threaded path.
                      Shape{128, 96, 64}));

using AccumulateCase = std::tuple<GemmLayout, Shape>;

class GemmAccumulateTest
    : public ::testing::TestWithParam<AccumulateCase> {};

TEST_P(GemmAccumulateTest, AccumulateAddsOntoExistingC) {
  const auto [layout, shape] = GetParam();
  const auto [m, n, k] = shape;
  Rng rng(m * 191 + n * 17 + k);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);

  std::vector<float> accumulated(c0);
  gemm(layout, m, n, k, a.data(), b.data(), accumulated.data(),
       /*accumulate=*/true);

  std::vector<float> product(m * n);
  gemm(layout, m, n, k, a.data(), b.data(), product.data());
  std::vector<float> expected(m * n);
  for (std::size_t i = 0; i < m * n; ++i) expected[i] = c0[i] + product[i];
  expect_close(accumulated, expected);
}

TEST_P(GemmAccumulateTest, AccumulateWithZeroKLeavesCUntouched) {
  const auto [layout, shape] = GetParam();
  const auto [m, n, k] = shape;
  (void)k;
  std::vector<float> c(m * n, 3.5f);
  const float dummy = 0.0f;
  gemm(layout, m, n, 0, &dummy, &dummy, c.data(), /*accumulate=*/true);
  for (const auto v : c) EXPECT_EQ(v, 3.5f);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndShapes, GemmAccumulateTest,
    ::testing::Combine(::testing::Values(GemmLayout::kNN, GemmLayout::kNT,
                                         GemmLayout::kTN),
                       ::testing::Values(Shape{1, 1, 1}, Shape{7, 5, 3},
                                         Shape{26, 640, 32},
                                         Shape{3, 19, 521})));

TEST(GemmTest, DenormalInputsMatchNaive) {
  // ±denormals must flow through the blocked path like any other value —
  // the seed kernel's `a == 0.0f` skip is gone, and packing must not
  // flush them differently than the naive reference does.
  const std::size_t m = 9, n = 33, k = 40;
  Rng rng(77);
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  const float denorm = std::numeric_limits<float>::denorm_min();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int r = static_cast<int>(rng.uniform_index(4));
    a[i] = r == 0 ? denorm : r == 1 ? -denorm
           : r == 2 ? 0.0f : static_cast<float>(rng.normal());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const int r = static_cast<int>(rng.uniform_index(4));
    b[i] = r == 0 ? denorm : r == 1 ? -denorm
           : r == 2 ? 0.0f : static_cast<float>(rng.normal());
  }
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c.data());
  naive_nn(m, n, k, a, b, expected);
  expect_close(c, expected);
}

TEST(GemmTest, SignedZeroRowsDoNotSkipColumns) {
  // Regression for the removed zero-skip: a row of A that is entirely
  // zero must still produce exact zeros in C (not stale memory), and a
  // zero in A must not cancel a NaN-free accumulation elsewhere.
  const std::size_t m = 4, n = 16, k = 8;
  std::vector<float> a(m * k, 0.0f);
  std::vector<float> b(k * n, 1.0f);
  for (std::size_t p = 0; p < k; ++p) a[0 * k + p] = 1.0f;  // row 0 only
  std::vector<float> c(m * n, -1.0f);
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c.data());
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(c[j], static_cast<float>(k));
  }
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(c[i * n + j], 0.0f);
  }
}

TEST(GemmTest, DeterministicAcrossThreadCounts) {
  // The row-block split never changes each element's k-accumulation
  // order, so results are bit-identical for any pool size.
  const std::size_t m = 96, n = 80, k = 300;
  Rng rng(123);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c1(m * n);
  std::vector<float> c4(m * n);
  set_global_pool_threads(1);
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c1.data());
  set_global_pool_threads(4);
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c4.data());
  set_global_pool_threads(0);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i], c4[i]) << "at index " << i;
  }
}

TEST(GemmTest, ZeroInnerDimensionClearsOutput) {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c(6, 42.0f);
  // k = 0: C must be zeroed, not left stale.
  gemm(GemmLayout::kNN, 2, 3, 0, a.data() ? a.data() : c.data(),
       b.data() ? b.data() : c.data(), c.data());
  for (const auto v : c) EXPECT_EQ(v, 0.0f);
}

TEST(GemmTest, NullPointerThrows) {
  std::vector<float> buf(4);
  EXPECT_THROW(
      gemm(GemmLayout::kNN, 2, 2, 2, nullptr, buf.data(), buf.data()),
      std::invalid_argument);
}

}  // namespace
}  // namespace univsa
