#include "univsa/tensor/gemm.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "univsa/common/rng.h"

namespace univsa {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void naive_nn(std::size_t m, std::size_t n, std::size_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void naive_nt(std::size_t m, std::size_t n, std::size_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[j * k + p];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void naive_tn(std::size_t m, std::size_t n, std::size_t k,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-3f) << "at index " << i;
  }
}

using Shape = std::tuple<std::size_t, std::size_t, std::size_t>;

class GemmShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapeTest, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 131 + n * 7 + k);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kNN, m, n, k, a.data(), b.data(), c.data());
  naive_nn(m, n, k, a, b, expected);
  expect_close(c, expected);
}

TEST_P(GemmShapeTest, NtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 151 + n * 11 + k);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(n * k, rng);
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kNT, m, n, k, a.data(), b.data(), c.data());
  naive_nt(m, n, k, a, b, expected);
  expect_close(c, expected);
}

TEST_P(GemmShapeTest, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 173 + n * 13 + k);
  const auto a = random_vec(k * m, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  std::vector<float> expected(m * n);
  gemm(GemmLayout::kTN, m, n, k, a.data(), b.data(), c.data());
  naive_tn(m, n, k, a, b, expected);
  expect_close(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4}, Shape{7, 5, 3},
                      Shape{16, 16, 16}, Shape{33, 17, 65},
                      Shape{64, 100, 72},
                      // Large enough to take the threaded path.
                      Shape{128, 96, 64}));

TEST(GemmTest, ZeroInnerDimensionClearsOutput) {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> c(6, 42.0f);
  // k = 0: C must be zeroed, not left stale.
  gemm(GemmLayout::kNN, 2, 3, 0, a.data() ? a.data() : c.data(),
       b.data() ? b.data() : c.data(), c.data());
  for (const auto v : c) EXPECT_EQ(v, 0.0f);
}

TEST(GemmTest, NullPointerThrows) {
  std::vector<float> buf(4);
  EXPECT_THROW(
      gemm(GemmLayout::kNN, 2, 2, 2, nullptr, buf.data(), buf.data()),
      std::invalid_argument);
}

}  // namespace
}  // namespace univsa
