#include "univsa/train/online_retrainer.h"

#include <gtest/gtest.h>

#include "univsa/data/synthetic.h"
#include "univsa/train/univsa_trainer.h"

namespace univsa::train {
namespace {

data::SyntheticSpec base_spec() {
  data::SyntheticSpec spec;
  spec.name = "drift";
  spec.domain = data::Domain::kFrequency;
  spec.windows = 6;
  spec.length = 10;
  spec.classes = 3;
  spec.levels = 32;
  spec.train_count = 220;
  spec.test_count = 150;
  spec.noise = 0.4;
  spec.artifact_rate = 0.0;
  spec.seed = 71;
  return spec;
}

vsa::ModelConfig model_config() {
  vsa::ModelConfig c;
  c.W = 6;
  c.L = 10;
  c.C = 3;
  c.M = 32;
  c.D_H = 8;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 10;
  c.Theta = 3;
  return c;
}

struct Scenario {
  vsa::Model model;               // trained on session A
  data::SyntheticResult session_a;
  data::SyntheticResult session_b;  // drifted
};

const Scenario& scenario() {
  static const Scenario s = [] {
    const data::SyntheticSpec spec_a = base_spec();
    data::SyntheticSpec spec_b = base_spec();
    spec_b.drift = 0.35;
    spec_b.drift_seed = 5;

    Scenario sc{vsa::Model(), data::generate(spec_a),
                data::generate(spec_b)};
    TrainOptions options;
    options.epochs = 12;
    options.seed = 3;
    sc.model =
        train_univsa(model_config(), sc.session_a.train, options).model;
    return sc;
  }();
  return s;
}

TEST(DriftTest, DriftedSessionIsHarderForTheFrozenModel) {
  const double on_a = scenario().model.accuracy(scenario().session_a.test);
  const double on_b = scenario().model.accuracy(scenario().session_b.test);
  EXPECT_GT(on_a, 0.75);
  EXPECT_LT(on_b, on_a - 0.05) << "drift did not degrade the model";
}

TEST(DriftTest, ZeroDriftChangesNothing) {
  data::SyntheticSpec spec = base_spec();
  spec.drift = 0.0;
  const auto a = data::generate(base_spec());
  const auto b = data::generate(spec);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.train.values(i), b.train.values(i));
  }
}

TEST(OnlineRetrainerTest, RecoversAccuracyOnDriftedSession) {
  const auto& sc = scenario();
  const double before = sc.model.accuracy(sc.session_b.test);
  const OnlineRetrainResult r =
      adapt_class_vectors(sc.model, sc.session_b.train);
  const double after = r.model.accuracy(sc.session_b.test);
  EXPECT_GT(after, before + 0.03)
      << "adaptation gained too little: " << before << " -> " << after;
  EXPECT_GT(r.flipped_lanes, 0u);
}

TEST(OnlineRetrainerTest, OnlyClassVectorsChange) {
  const auto& sc = scenario();
  const OnlineRetrainResult r =
      adapt_class_vectors(sc.model, sc.session_b.train);
  EXPECT_EQ(r.model.mask(), sc.model.mask());
  EXPECT_EQ(r.model.value_table_high(), sc.model.value_table_high());
  EXPECT_EQ(r.model.kernel_bits(), sc.model.kernel_bits());
  EXPECT_EQ(r.model.feature_vectors(), sc.model.feature_vectors());
  // Encodings are therefore identical.
  EXPECT_EQ(r.model.encode(sc.session_b.test.values(0)),
            sc.model.encode(sc.session_b.test.values(0)));
}

TEST(OnlineRetrainerTest, UpdatesDecreaseAcrossEpochs) {
  const auto& sc = scenario();
  OnlineRetrainOptions options;
  options.epochs = 5;
  const OnlineRetrainResult r =
      adapt_class_vectors(sc.model, sc.session_b.train, options);
  ASSERT_GE(r.updates_per_epoch.size(), 2u);
  EXPECT_LE(r.updates_per_epoch.back(),
            r.updates_per_epoch.front());
}

TEST(OnlineRetrainerTest, AdaptingToTheSameSessionDoesLittleHarm) {
  const auto& sc = scenario();
  const double before = sc.model.accuracy(sc.session_a.test);
  const OnlineRetrainResult r =
      adapt_class_vectors(sc.model, sc.session_a.train);
  const double after = r.model.accuracy(sc.session_a.test);
  EXPECT_GT(after, before - 0.06);
}

TEST(OnlineRetrainerTest, HighInertiaFlipsFewerLanes) {
  const auto& sc = scenario();
  OnlineRetrainOptions plastic;
  plastic.inertia = 1;
  plastic.epochs = 2;
  OnlineRetrainOptions stable;
  stable.inertia = 50;
  stable.epochs = 2;
  const auto r_plastic =
      adapt_class_vectors(sc.model, sc.session_b.train, plastic);
  const auto r_stable =
      adapt_class_vectors(sc.model, sc.session_b.train, stable);
  EXPECT_LT(r_stable.flipped_lanes, r_plastic.flipped_lanes);
}

TEST(OnlineRetrainerTest, DeterministicForSeed) {
  const auto& sc = scenario();
  const auto a = adapt_class_vectors(sc.model, sc.session_b.train);
  const auto b = adapt_class_vectors(sc.model, sc.session_b.train);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.updates_per_epoch, b.updates_per_epoch);
}

TEST(OnlineRetrainerTest, ValidatesInputs) {
  const auto& sc = scenario();
  data::Dataset wrong(3, 3, 3, 32);
  wrong.add(std::vector<std::uint16_t>(9, 0), 0);
  EXPECT_THROW(adapt_class_vectors(sc.model, wrong),
               std::invalid_argument);
  OnlineRetrainOptions bad;
  bad.epochs = 0;
  EXPECT_THROW(adapt_class_vectors(sc.model, sc.session_b.train, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace univsa::train
