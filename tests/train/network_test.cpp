#include "univsa/train/univsa_network.h"

#include <gtest/gtest.h>

#include <numeric>

#include "univsa/data/synthetic.h"
#include "univsa/train/mask_selection.h"
#include "univsa/train/univsa_trainer.h"

namespace univsa::train {
namespace {

vsa::ModelConfig tiny_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 2;
  c.M = 16;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 5;
  c.Theta = 2;
  return c;
}

data::SyntheticResult tiny_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.domain = data::Domain::kFrequency;
  spec.windows = 4;
  spec.length = 6;
  spec.classes = 2;
  spec.levels = 16;
  spec.train_count = 120;
  spec.test_count = 60;
  spec.noise = 0.25;
  spec.separation = 1.8;
  spec.artifact_rate = 0.0;
  spec.seed = 11;
  return data::generate(spec);
}

struct VariantCase {
  bool use_dvp;
  bool use_conv;
  std::size_t theta;
};

class NetworkVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(NetworkVariantTest, ForwardShapeAndBackwardRun) {
  const auto variant = GetParam();
  vsa::ModelConfig c = tiny_config();
  c.Theta = variant.theta;
  NetworkOptions opts;
  opts.use_dvp = variant.use_dvp;
  opts.use_conv = variant.use_conv;

  const auto data = tiny_data();
  Rng rng(1);
  const auto mask =
      variant.use_dvp ? select_importance_mask(data.train, 0.5)
                      : std::vector<std::uint8_t>{};
  UniVsaNetwork net(c, opts, mask, rng);

  const std::vector<std::size_t> batch = {0, 1, 2, 3, 4};
  const Tensor logits = net.forward(data.train, batch);
  ASSERT_EQ(logits.dim(0), 5u);
  ASSERT_EQ(logits.dim(1), c.C);
  Tensor grad(logits.shape());
  grad.fill(0.1f);
  EXPECT_NO_THROW(net.backward(grad));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, NetworkVariantTest,
    ::testing::Values(VariantCase{true, true, 3},   // full UniVSA
                      VariantCase{true, true, 1},   // no SV
                      VariantCase{false, true, 1},  // BiConv only
                      VariantCase{true, false, 1},  // DVP only
                      VariantCase{false, false, 3}, // SV only
                      VariantCase{false, false, 1}  // plain LDC
                      ));

TEST(NetworkTest, BackwardBeforeForwardThrows) {
  Rng rng(2);
  NetworkOptions opts;
  opts.use_dvp = false;
  UniVsaNetwork net(tiny_config(), opts, {}, rng);
  EXPECT_THROW(net.backward(Tensor({1, 2})), std::logic_error);
}

TEST(NetworkTest, DatasetGeometryValidated) {
  Rng rng(3);
  NetworkOptions opts;
  opts.use_dvp = false;
  UniVsaNetwork net(tiny_config(), opts, {}, rng);
  data::Dataset wrong(3, 6, 2, 16);
  wrong.add(std::vector<std::uint16_t>(18, 0), 0);
  EXPECT_THROW(net.forward(wrong, {0}), std::invalid_argument);
}

TEST(NetworkTest, TrainingBeatsChanceOnTinyTask) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 15;
  opts.batch_size = 16;
  opts.seed = 5;
  NetworkOptions net_opts;  // full UniVSA
  TrainedNetwork trained =
      train_network(tiny_config(), net_opts, data.train, opts);
  const double acc = trained.network->evaluate(data.test);
  EXPECT_GT(acc, 0.7) << "test accuracy " << acc;
}

TEST(NetworkTest, ExtractedModelMatchesNetworkPredictions) {
  // The central LDC-extraction property (Sec. II-C): the deployed binary
  // model must agree with the trained partial BNN on every sample.
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 4;
  opts.seed = 6;
  NetworkOptions net_opts;  // DVP + conv + SV
  TrainedNetwork trained =
      train_network(tiny_config(), net_opts, data.train, opts);

  const vsa::Model deployed = trained.network->extract_model();
  std::vector<std::size_t> indices(data.test.size());
  std::iota(indices.begin(), indices.end(), 0);
  const auto net_pred = trained.network->predict(data.test, indices);
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    EXPECT_EQ(deployed.predict(data.test.values(i)).label, net_pred[i])
        << "sample " << i;
  }
}

TEST(NetworkTest, ExtractedModelMatchesNetworkWithoutDvp) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 3;
  opts.seed = 7;
  NetworkOptions net_opts;
  net_opts.use_dvp = false;  // conv-only ablation still extracts
  TrainedNetwork trained =
      train_network(tiny_config(), net_opts, data.train, opts);
  const vsa::Model deployed = trained.network->extract_model();
  std::vector<std::size_t> indices(20);
  std::iota(indices.begin(), indices.end(), 0);
  const auto net_pred = trained.network->predict(data.test, indices);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(deployed.predict(data.test.values(i)).label, net_pred[i]);
  }
}

TEST(NetworkTest, LdcExtractionMatchesNetwork) {
  const auto data = tiny_data();
  vsa::ModelConfig c = tiny_config();
  c.D_H = 12;  // LDC dimension
  c.Theta = 1;
  TrainOptions opts;
  opts.epochs = 4;
  opts.seed = 8;
  NetworkOptions net_opts;
  net_opts.use_dvp = false;
  net_opts.use_conv = false;
  TrainedNetwork trained = train_network(c, net_opts, data.train, opts);
  const vsa::LdcModel deployed = trained.network->extract_ldc_model();
  EXPECT_EQ(deployed.dim(), 12u);

  std::vector<std::size_t> indices(data.test.size());
  std::iota(indices.begin(), indices.end(), 0);
  const auto net_pred = trained.network->predict(data.test, indices);
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    EXPECT_EQ(deployed.predict(data.test.values(i)), net_pred[i]);
  }
}

TEST(NetworkTest, ExtractionRequiresMatchingArchitecture) {
  Rng rng(9);
  NetworkOptions no_conv;
  no_conv.use_conv = false;
  no_conv.use_dvp = false;
  UniVsaNetwork ldc_net(tiny_config(), no_conv, {}, rng);
  EXPECT_THROW(ldc_net.extract_model(), std::invalid_argument);

  NetworkOptions full;
  const auto mask = std::vector<std::uint8_t>(24, 1);
  UniVsaNetwork conv_net(tiny_config(), full, mask, rng);
  EXPECT_THROW(conv_net.extract_ldc_model(), std::invalid_argument);
}

TEST(NetworkTest, MaskSizeValidatedUnderDvp) {
  Rng rng(10);
  NetworkOptions opts;  // dvp on
  EXPECT_THROW(UniVsaNetwork(tiny_config(), opts, {1, 1, 1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace univsa::train
