#include "univsa/train/univsa_trainer.h"

#include <gtest/gtest.h>

#include "univsa/data/synthetic.h"
#include "univsa/train/ldc_trainer.h"

namespace univsa::train {
namespace {

data::SyntheticResult tiny_data(std::uint64_t seed = 21) {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.domain = data::Domain::kTime;
  spec.windows = 4;
  spec.length = 8;
  spec.classes = 2;
  spec.levels = 32;
  spec.train_count = 150;
  spec.test_count = 80;
  spec.noise = 0.3;
  spec.separation = 1.5;
  spec.seed = seed;
  return data::generate(spec);
}

vsa::ModelConfig tiny_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 8;
  c.C = 2;
  c.M = 32;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 6;
  c.Theta = 1;
  return c;
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 12;
  opts.seed = 1;
  const UniVsaTrainResult r = train_univsa(tiny_config(), data.train, opts);
  ASSERT_EQ(r.history.size(), 12u);
  EXPECT_LT(r.history.back().loss, r.history.front().loss);
}

TEST(TrainerTest, DeployedModelBeatsChance) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 15;
  opts.seed = 2;
  const UniVsaTrainResult r = train_univsa(tiny_config(), data.train, opts);
  EXPECT_GT(r.model.accuracy(data.test), 0.7);
}

TEST(TrainerTest, SameSeedGivesIdenticalModel) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 3;
  opts.seed = 3;
  const UniVsaTrainResult a = train_univsa(tiny_config(), data.train, opts);
  const UniVsaTrainResult b = train_univsa(tiny_config(), data.train, opts);
  EXPECT_EQ(a.model, b.model);
}

TEST(TrainerTest, DifferentSeedsGiveDifferentModels) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 3;
  opts.seed = 4;
  const UniVsaTrainResult a = train_univsa(tiny_config(), data.train, opts);
  opts.seed = 5;
  const UniVsaTrainResult b = train_univsa(tiny_config(), data.train, opts);
  EXPECT_NE(a.model, b.model);
}

TEST(TrainerTest, ValidatesOptions) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 0;
  EXPECT_THROW(train_univsa(tiny_config(), data.train, opts),
               std::invalid_argument);
}

TEST(TrainerTest, TrainedModelConfigMatchesRequest) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 2;
  const vsa::ModelConfig c = tiny_config();
  const UniVsaTrainResult r = train_univsa(c, data.train, opts);
  EXPECT_EQ(r.model.config(), c);
}

TEST(LdcTrainerTest, BeatsChanceAndExtractsRequestedDimension) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 15;
  opts.seed = 6;
  const LdcTrainResult r = train_ldc(data.train, 16, opts);
  EXPECT_EQ(r.model.dim(), 16u);
  EXPECT_GT(r.model.accuracy(data.test), 0.65);
}

TEST(LdcTrainerTest, SupportsDimensionsBeyondPackedLaneLimit) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 2;
  opts.seed = 7;
  // D = 64 exceeds the 32-lane conv path limit but LDC has no conv.
  const LdcTrainResult r = train_ldc(data.train, 64, opts);
  EXPECT_EQ(r.model.dim(), 64u);
}

TEST(TrainerTest, MaskFractionRespected) {
  const auto data = tiny_data();
  TrainOptions opts;
  opts.epochs = 1;
  opts.mask_high_fraction = 0.25;
  NetworkOptions net_opts;
  const TrainedNetwork t =
      train_network(tiny_config(), net_opts, data.train, opts);
  std::size_t ones = 0;
  for (const auto m : t.mask) ones += m;
  EXPECT_EQ(ones, 8u);  // 0.25 · 32 features
}

}  // namespace
}  // namespace univsa::train
