#include "univsa/train/lehdc_trainer.h"

#include <gtest/gtest.h>

#include "univsa/data/synthetic.h"

namespace univsa::train {
namespace {

data::SyntheticResult tiny_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.domain = data::Domain::kFrequency;
  spec.windows = 4;
  spec.length = 8;
  spec.classes = 3;
  spec.levels = 32;
  spec.train_count = 150;
  spec.test_count = 90;
  spec.noise = 0.5;
  spec.seed = 31;
  return data::generate(spec);
}

TEST(LehdcTrainerTest, BeatsChanceAtModerateDimension) {
  const auto data = tiny_data();
  LehdcOptions opts;
  opts.dim = 512;
  opts.epochs = 10;
  opts.seed = 1;
  const LehdcTrainResult r = train_lehdc(data.train, opts);
  EXPECT_EQ(r.model.dim(), 512u);
  EXPECT_GT(r.model.accuracy(data.test), 0.6);
}

TEST(LehdcTrainerTest, TrainingAccuracyImproves) {
  const auto data = tiny_data();
  LehdcOptions opts;
  opts.dim = 256;
  opts.epochs = 10;
  opts.seed = 2;
  const LehdcTrainResult r = train_lehdc(data.train, opts);
  ASSERT_EQ(r.history.size(), 10u);
  EXPECT_GT(r.history.back().train_accuracy,
            r.history.front().train_accuracy - 0.05);
  EXPECT_LT(r.history.back().loss, r.history.front().loss);
}

TEST(LehdcTrainerTest, DeterministicForSeed) {
  const auto data = tiny_data();
  LehdcOptions opts;
  opts.dim = 128;
  opts.epochs = 3;
  opts.seed = 3;
  const LehdcTrainResult a = train_lehdc(data.train, opts);
  const LehdcTrainResult b = train_lehdc(data.train, opts);
  // Same encodings, same class vectors -> identical predictions.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.model.predict(data.test.values(i)),
              b.model.predict(data.test.values(i)));
  }
}

TEST(LehdcTrainerTest, HigherDimensionHelpsOrMatches) {
  const auto data = tiny_data();
  LehdcOptions small;
  small.dim = 32;
  small.epochs = 8;
  small.seed = 4;
  LehdcOptions large = small;
  large.dim = 1024;
  const double acc_small =
      train_lehdc(data.train, small).model.accuracy(data.test);
  const double acc_large =
      train_lehdc(data.train, large).model.accuracy(data.test);
  EXPECT_GE(acc_large + 0.08, acc_small);
}

TEST(LehdcTrainerTest, ValidatesOptions) {
  const auto data = tiny_data();
  LehdcOptions opts;
  opts.dim = 1;
  EXPECT_THROW(train_lehdc(data.train, opts), std::invalid_argument);
}

}  // namespace
}  // namespace univsa::train
