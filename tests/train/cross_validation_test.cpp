#include "univsa/train/cross_validation.h"

#include <gtest/gtest.h>

#include "univsa/data/synthetic.h"

namespace univsa::train {
namespace {

data::Dataset tiny_dataset() {
  data::SyntheticSpec spec;
  spec.name = "cv";
  spec.domain = data::Domain::kFrequency;
  spec.windows = 4;
  spec.length = 6;
  spec.classes = 2;
  spec.levels = 16;
  spec.train_count = 150;
  spec.test_count = 10;
  spec.noise = 0.3;
  spec.separation = 1.6;
  spec.seed = 88;
  return data::generate(spec).train;
}

vsa::ModelConfig tiny_config() {
  vsa::ModelConfig c;
  c.W = 4;
  c.L = 6;
  c.C = 2;
  c.M = 16;
  c.D_H = 4;
  c.D_L = 2;
  c.D_K = 3;
  c.O = 4;
  c.Theta = 1;
  return c;
}

TEST(StratifiedFoldsTest, EveryFoldGetsEveryClass) {
  const data::Dataset d = tiny_dataset();
  const auto folds = stratified_folds(d, 5, 1);
  ASSERT_EQ(folds.size(), d.size());
  std::vector<std::vector<std::size_t>> class_count(
      5, std::vector<std::size_t>(d.classes(), 0));
  for (std::size_t i = 0; i < d.size(); ++i) {
    ASSERT_LT(folds[i], 5u);
    ++class_count[folds[i]][static_cast<std::size_t>(d.label(i))];
  }
  for (std::size_t f = 0; f < 5; ++f) {
    for (std::size_t c = 0; c < d.classes(); ++c) {
      EXPECT_GT(class_count[f][c], 0u) << "fold " << f << " class " << c;
    }
  }
}

TEST(StratifiedFoldsTest, FoldSizesAreBalanced) {
  const data::Dataset d = tiny_dataset();
  const auto folds = stratified_folds(d, 5, 2);
  std::vector<std::size_t> sizes(5, 0);
  for (const auto f : folds) ++sizes[f];
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*hi - *lo, 2u);
}

TEST(StratifiedFoldsTest, DeterministicForSeed) {
  const data::Dataset d = tiny_dataset();
  EXPECT_EQ(stratified_folds(d, 4, 3), stratified_folds(d, 4, 3));
}

TEST(StratifiedFoldsTest, Validates) {
  const data::Dataset d = tiny_dataset();
  EXPECT_THROW(stratified_folds(d, 1, 1), std::invalid_argument);
}

TEST(CrossValidationTest, ProducesOneAccuracyPerFold) {
  CrossValidationOptions options;
  options.folds = 3;
  options.train.epochs = 5;
  options.train.seed = 4;
  const CrossValidationResult r =
      cross_validate_univsa(tiny_config(), tiny_dataset(), options);
  ASSERT_EQ(r.fold_accuracies.size(), 3u);
  for (const double acc : r.fold_accuracies) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
  EXPECT_EQ(r.summary.count, 3u);
  EXPECT_GT(r.summary.mean, 0.6);  // well above 2-class chance
}

TEST(CrossValidationTest, SummaryMatchesFoldValues) {
  CrossValidationOptions options;
  options.folds = 3;
  options.train.epochs = 3;
  const CrossValidationResult r =
      cross_validate_univsa(tiny_config(), tiny_dataset(), options);
  const report::Summary direct = report::summarize(r.fold_accuracies);
  EXPECT_DOUBLE_EQ(r.summary.mean, direct.mean);
  EXPECT_DOUBLE_EQ(r.summary.stddev, direct.stddev);
}

TEST(CrossValidationTest, DeterministicEndToEnd) {
  CrossValidationOptions options;
  options.folds = 3;
  options.train.epochs = 3;
  const auto a = cross_validate_univsa(tiny_config(), tiny_dataset(),
                                       options);
  const auto b = cross_validate_univsa(tiny_config(), tiny_dataset(),
                                       options);
  EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

}  // namespace
}  // namespace univsa::train
