#include "univsa/train/mask_selection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/common/rng.h"

namespace univsa::train {
namespace {

/// Dataset where only the first feature is informative.
data::Dataset informative_first_feature() {
  data::Dataset d(1, 4, 2, 256);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int label = static_cast<int>(rng.uniform_index(2));
    std::vector<std::uint16_t> x(4);
    // Feature 0 separates classes; the rest are uniform noise.
    x[0] = static_cast<std::uint16_t>(label == 0
                                          ? rng.uniform_index(100)
                                          : 150 + rng.uniform_index(100));
    for (int j = 1; j < 4; ++j) {
      x[j] = static_cast<std::uint16_t>(rng.uniform_index(256));
    }
    d.add(std::move(x), label);
  }
  return d;
}

TEST(MaskSelectionTest, InformativeFeatureScoresHighest) {
  const auto d = informative_first_feature();
  const auto scores = feature_f_scores(d);
  ASSERT_EQ(scores.size(), 4u);
  for (std::size_t j = 1; j < 4; ++j) {
    EXPECT_GT(scores[0], scores[j]);
  }
}

TEST(MaskSelectionTest, MaskSelectsInformativeFeature) {
  const auto d = informative_first_feature();
  const auto mask = select_importance_mask(d, 0.25);
  ASSERT_EQ(mask.size(), 4u);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1] + mask[2] + mask[3], 0);
}

TEST(MaskSelectionTest, FractionControlsCount) {
  const auto d = informative_first_feature();
  const auto half = select_importance_mask(d, 0.5);
  std::size_t ones = 0;
  for (const auto m : half) ones += m;
  EXPECT_EQ(ones, 2u);

  const auto all = select_importance_mask(d, 1.0);
  ones = 0;
  for (const auto m : all) ones += m;
  EXPECT_EQ(ones, 4u);
}

TEST(MaskSelectionTest, AtLeastOneFeatureSelected) {
  const auto d = informative_first_feature();
  const auto mask = select_importance_mask(d, 1e-9);
  std::size_t ones = 0;
  for (const auto m : mask) ones += m;
  EXPECT_EQ(ones, 1u);
}

TEST(MaskSelectionTest, RejectsBadFraction) {
  const auto d = informative_first_feature();
  EXPECT_THROW(select_importance_mask(d, 0.0), std::invalid_argument);
  EXPECT_THROW(select_importance_mask(d, 1.5), std::invalid_argument);
}

TEST(MaskSelectionTest, ScoresAreFiniteOnConstantFeatures) {
  data::Dataset d(1, 2, 2, 4);
  d.add({2, 0}, 0);
  d.add({2, 3}, 1);
  d.add({2, 1}, 0);
  d.add({2, 2}, 1);
  const auto scores = feature_f_scores(d);
  EXPECT_TRUE(std::isfinite(scores[0]));
  EXPECT_TRUE(std::isfinite(scores[1]));
  // The constant feature carries no class information.
  EXPECT_LT(scores[0], scores[1]);
}

}  // namespace
}  // namespace univsa::train
