#include "univsa/nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/common/rng.h"

namespace univsa {
namespace {

TEST(LossTest, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::zeros({2, 4});
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(LossTest, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 10.0f;
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_LT(r.loss, 1e-3f);
  EXPECT_EQ(r.correct, 1u);
}

TEST(LossTest, ConfidentWrongPredictionHasHighLoss) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 10.0f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_GT(r.loss, 5.0f);
  EXPECT_EQ(r.correct, 0u);
}

TEST(LossTest, GradientRowsSumToZero) {
  Rng rng(1);
  const Tensor logits = Tensor::randn({4, 5}, rng);
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (std::size_t b = 0; b < 4; ++b) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) s += r.grad_logits.at(b, c);
    EXPECT_NEAR(s, 0.0f, 1e-5f);
  }
}

TEST(LossTest, GradientMatchesCentralDifference) {
  Rng rng(2);
  Tensor logits = Tensor::randn({3, 4}, rng);
  const std::vector<int> labels = {1, 0, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits.flat()[i];
    logits.flat()[i] = saved + eps;
    const float plus = softmax_cross_entropy(logits, labels).loss;
    logits.flat()[i] = saved - eps;
    const float minus = softmax_cross_entropy(logits, labels).loss;
    logits.flat()[i] = saved;
    const float numeric = (plus - minus) / (2.0f * eps);
    EXPECT_NEAR(numeric, r.grad_logits.flat()[i], 2e-3f);
  }
}

TEST(LossTest, NumericallyStableAtExtremeLogits) {
  Tensor logits({1, 2});
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = -1000.0f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0f, 1e-4f);
}

TEST(LossTest, ValidatesInputs) {
  EXPECT_THROW(softmax_cross_entropy(Tensor({2, 3}), {0}),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(Tensor({1, 3}), {3}),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(Tensor({1, 3}), {-1}),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(Tensor({6}), {0}),
               std::invalid_argument);
}

TEST(LossTest, CorrectCountsArgmaxHits) {
  Tensor logits({3, 2});
  logits.at(0, 0) = 1.0f;  // pred 0, label 0 -> hit
  logits.at(1, 1) = 1.0f;  // pred 1, label 0 -> miss
  logits.at(2, 1) = 1.0f;  // pred 1, label 1 -> hit
  const LossResult r = softmax_cross_entropy(logits, {0, 0, 1});
  EXPECT_EQ(r.correct, 2u);
}

}  // namespace
}  // namespace univsa
