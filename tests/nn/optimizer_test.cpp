#include "univsa/nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/common/rng.h"

namespace univsa {
namespace {

/// Minimizes f(w) = Σ (w_i - target_i)² with an optimizer.
template <typename Opt>
float minimize_quadratic(Opt& opt, Tensor& w, Tensor& g,
                         const Tensor& target, int steps) {
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      g.flat()[i] = 2.0f * (w.flat()[i] - target.flat()[i]);
    }
    opt.step();
    opt.zero_grad();
  }
  float err = 0.0f;
  for (std::size_t i = 0; i < w.size(); ++i) {
    err += std::fabs(w.flat()[i] - target.flat()[i]);
  }
  return err;
}

TEST(AdamTest, MinimizesQuadratic) {
  Rng rng(1);
  Tensor w = Tensor::randn({8}, rng);
  Tensor g({8});
  const Tensor target = Tensor::randn({8}, rng, 0.5f);
  Adam opt({{&w, &g, false}}, 0.05f);
  const float err = minimize_quadratic(opt, w, g, target, 500);
  EXPECT_LT(err, 0.05f);
}

TEST(AdamTest, ClipsLatentBinaryWeights) {
  Tensor w = Tensor::from_data({2}, {0.99f, -0.99f});
  Tensor g = Tensor::from_data({2}, {-10.0f, 10.0f});
  Adam opt({{&w, &g, true}}, 0.5f);
  opt.step();
  EXPECT_LE(w[0], 1.0f);
  EXPECT_GE(w[1], -1.0f);
}

TEST(AdamTest, DoesNotClipFloatWeights) {
  Tensor w = Tensor::from_data({1}, {0.99f});
  Tensor g = Tensor::from_data({1}, {-10.0f});
  Adam opt({{&w, &g, false}}, 0.5f);
  opt.step();
  EXPECT_GT(w[0], 1.0f);
}

TEST(AdamTest, ZeroGradClearsAllParams) {
  Tensor w1({2});
  Tensor g1 = Tensor::full({2}, 3.0f);
  Tensor w2({3});
  Tensor g2 = Tensor::full({3}, -1.0f);
  Adam opt({{&w1, &g1, false}, {&w2, &g2, false}});
  opt.zero_grad();
  for (const auto v : g1.flat()) EXPECT_EQ(v, 0.0f);
  for (const auto v : g2.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(AdamTest, RejectsMismatchedShapes) {
  Tensor w({2});
  Tensor g({3});
  EXPECT_THROW(Adam({{&w, &g, false}}), std::invalid_argument);
}

TEST(AdamTest, RejectsNullParams) {
  Tensor w({2});
  EXPECT_THROW(Adam({{&w, nullptr, false}}), std::invalid_argument);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // Adam's bias correction makes the first step ≈ lr · sign(grad).
  Tensor w = Tensor::from_data({2}, {0.0f, 0.0f});
  Tensor g = Tensor::from_data({2}, {1.0f, -3.0f});
  Adam opt({{&w, &g, false}}, 0.1f);
  opt.step();
  EXPECT_NEAR(w[0], -0.1f, 1e-4f);
  EXPECT_NEAR(w[1], 0.1f, 1e-4f);
}

TEST(SgdTest, MinimizesQuadratic) {
  Rng rng(2);
  Tensor w = Tensor::randn({8}, rng);
  Tensor g({8});
  const Tensor target = Tensor::randn({8}, rng, 0.5f);
  Sgd opt({{&w, &g, false}}, 0.05f, 0.9f);
  const float err = minimize_quadratic(opt, w, g, target, 500);
  EXPECT_LT(err, 0.05f);
}

TEST(SgdTest, ClipsLatentBinaryWeights) {
  Tensor w = Tensor::from_data({1}, {0.9f});
  Tensor g = Tensor::from_data({1}, {-100.0f});
  Sgd opt({{&w, &g, true}}, 0.1f, 0.0f);
  opt.step();
  EXPECT_EQ(w[0], 1.0f);
}

}  // namespace
}  // namespace univsa
