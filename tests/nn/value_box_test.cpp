#include "univsa/nn/value_box.h"

#include <gtest/gtest.h>

#include <cmath>

namespace univsa {
namespace {

TEST(ValueBoxTest, TableShapeAndBipolarOutputs) {
  Rng rng(1);
  ValueBox vb(256, 8, rng);
  const Tensor table = vb.forward_table();
  ASSERT_EQ(table.rank(), 2u);
  EXPECT_EQ(table.dim(0), 256u);
  EXPECT_EQ(table.dim(1), 8u);
  for (const auto v : table.flat()) {
    EXPECT_TRUE(v == 1.0f || v == -1.0f);
  }
}

TEST(ValueBoxTest, DeterministicAcrossCalls) {
  Rng rng(2);
  ValueBox vb(64, 4, rng);
  const Tensor a = vb.forward_table();
  const Tensor b = vb.forward_table();
  EXPECT_TRUE(allclose(a, b));
}

TEST(ValueBoxTest, BackwardAccumulatesIntoMlpParams) {
  Rng rng(3);
  ValueBox vb(16, 4, rng);
  vb.zero_grad();
  vb.forward_table();
  Tensor grad({16, 4});
  grad.fill(1.0f);
  vb.backward_table(grad);
  // At least one MLP parameter gradient must be non-zero (the sign STE
  // window keeps pre-activations near zero at init).
  float total = 0.0f;
  for (const auto& p : vb.params()) {
    for (const auto g : p.grad->flat()) total += std::abs(g);
  }
  EXPECT_GT(total, 0.0f);
}

TEST(ValueBoxTest, BackwardShapeValidated) {
  Rng rng(4);
  ValueBox vb(16, 4, rng);
  vb.forward_table();
  EXPECT_THROW(vb.backward_table(Tensor({16, 5})), std::invalid_argument);
}

TEST(ValueBoxTest, ParamCountIsTwoLinears) {
  Rng rng(5);
  ValueBox vb(16, 4, rng, /*hidden=*/8);
  const auto params = vb.params();
  ASSERT_EQ(params.size(), 4u);  // two weight/bias pairs
  EXPECT_EQ(params[0].value->size(), 8u);       // fc1 weight (8, 1)
  EXPECT_EQ(params[2].value->size(), 8u * 4u);  // fc2 weight (4, 8)
  for (const auto& p : params) EXPECT_FALSE(p.clip_latent);
}

TEST(ValueBoxTest, RejectsDegenerateConfig) {
  Rng rng(6);
  EXPECT_THROW(ValueBox(1, 4, rng), std::invalid_argument);
  EXPECT_THROW(ValueBox(16, 0, rng), std::invalid_argument);
}

TEST(ValueBoxTest, NearbyLevelsOftenShareLanes) {
  // The MLP is a smooth map: adjacent quantization levels should agree on
  // most output lanes — the property that makes VB a useful value encoder
  // (similar values -> similar vectors).
  Rng rng(7);
  ValueBox vb(256, 16, rng);
  const Tensor table = vb.forward_table();
  std::size_t agreements = 0;
  for (std::size_t m = 0; m + 1 < 256; ++m) {
    for (std::size_t d = 0; d < 16; ++d) {
      if (table.at(m, d) == table.at(m + 1, d)) ++agreements;
    }
  }
  const double rate =
      static_cast<double>(agreements) / (255.0 * 16.0);
  EXPECT_GT(rate, 0.9);
}

}  // namespace
}  // namespace univsa
