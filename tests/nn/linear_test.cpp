#include "univsa/nn/linear.h"

#include <gtest/gtest.h>

#include "univsa/nn/grad_check.h"
#include "univsa/nn/loss.h"

namespace univsa {
namespace {

TEST(LinearTest, ForwardMatchesHandComputed) {
  Rng rng(1);
  Linear layer(2, 2, rng);
  // Overwrite weights with known values via params().
  auto params = layer.params();
  Tensor& w = *params[0].value;
  Tensor& b = *params[1].value;
  w.at(0, 0) = 1.0f;
  w.at(0, 1) = 2.0f;
  w.at(1, 0) = -1.0f;
  w.at(1, 1) = 0.5f;
  b[0] = 0.1f;
  b[1] = -0.2f;

  const Tensor x = Tensor::from_data({1, 2}, {3.0f, 4.0f});
  const Tensor y = layer.forward(x);
  EXPECT_NEAR(y.at(0, 0), 3.0f + 8.0f + 0.1f, 1e-5f);
  EXPECT_NEAR(y.at(0, 1), -3.0f + 2.0f - 0.2f, 1e-5f);
}

TEST(LinearTest, ShapeValidation) {
  Rng rng(2);
  Linear layer(3, 4, rng);
  EXPECT_THROW(layer.forward(Tensor({2, 2})), std::invalid_argument);
  layer.forward(Tensor({2, 3}));
  EXPECT_THROW(layer.backward(Tensor({2, 3})), std::invalid_argument);
}

TEST(LinearTest, BackwardBeforeForwardThrows) {
  Rng rng(3);
  Linear layer(3, 4, rng);
  EXPECT_THROW(layer.backward(Tensor({2, 4})), std::logic_error);
}

TEST(LinearTest, GradCheckWeightsBiasAndInput) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  const std::vector<int> labels = {0, 1, 0, 1};

  const auto loss_fn = [&]() {
    Linear copy = layer;  // value-semantics copy keeps caches isolated
    return softmax_cross_entropy(copy.forward(x), labels).loss;
  };

  layer.zero_grad();
  const Tensor logits = layer.forward(x);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  const Tensor grad_x = layer.backward(loss.grad_logits);

  auto params = layer.params();
  const auto wres = check_param_gradient(loss_fn, *params[0].value,
                                         *params[0].grad);
  EXPECT_TRUE(wres.passed) << "weight max rel err " << wres.max_rel_error;
  const auto bres = check_param_gradient(loss_fn, *params[1].value,
                                         *params[1].grad);
  EXPECT_TRUE(bres.passed) << "bias max rel err " << bres.max_rel_error;
  const auto xres = check_input_gradient(loss_fn, x, grad_x);
  EXPECT_TRUE(xres.passed) << "input max rel err " << xres.max_rel_error;
}

TEST(LinearTest, GradAccumulatesAcrossBackwardCalls) {
  Rng rng(5);
  Linear layer(2, 2, rng);
  const Tensor x = Tensor::randn({3, 2}, rng);
  const Tensor g = Tensor::randn({3, 2}, rng);

  layer.zero_grad();
  layer.forward(x);
  layer.backward(g);
  const Tensor once = *layer.params()[0].grad;
  layer.forward(x);
  layer.backward(g);
  const Tensor twice = *layer.params()[0].grad;
  EXPECT_TRUE(allclose(twice, once.mul(2.0f), 1e-4f));
}

TEST(LinearTest, ZeroGradClears) {
  Rng rng(6);
  Linear layer(2, 2, rng);
  layer.forward(Tensor::randn({1, 2}, rng));
  layer.backward(Tensor::randn({1, 2}, rng));
  layer.zero_grad();
  for (const auto& p : layer.params()) {
    for (const auto v : p.grad->flat()) EXPECT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace univsa
