#include "univsa/nn/binary_conv2d.h"

#include <gtest/gtest.h>

#include "univsa/nn/grad_check.h"
#include "univsa/nn/loss.h"
#include "univsa/tensor/im2col.h"

namespace univsa {
namespace {

TEST(BinaryConv2dTest, OutputShape) {
  Rng rng(1);
  BinaryConv2d conv(4, 6, 3, rng);
  const Tensor x = Tensor::randn({2, 4, 5, 7}, rng);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.rank(), 4u);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 6u);
  EXPECT_EQ(y.dim(2), 5u);
  EXPECT_EQ(y.dim(3), 7u);
}

TEST(BinaryConv2dTest, ForwardMatchesIm2colLowering) {
  Rng rng(2);
  BinaryConv2d conv(3, 4, 3, rng);
  const Tensor x = Tensor::randn({1, 3, 5, 5}, rng);
  const Tensor y = conv.forward(x);

  Tensor sample({3, 5, 5});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample.flat()[i] = x.flat()[i];
  }
  const Tensor expected = conv.binary_weight().matmul(im2col(sample, 3));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(y.flat()[i], expected.flat()[i], 1e-4f);
  }
}

TEST(BinaryConv2dTest, BinaryWeightIsBipolar) {
  Rng rng(3);
  BinaryConv2d conv(2, 3, 5, rng);
  const Tensor bw = conv.binary_weight();
  for (const auto v : bw.flat()) {
    EXPECT_TRUE(v == 1.0f || v == -1.0f);
  }
}

TEST(BinaryConv2dTest, RejectsEvenKernel) {
  Rng rng(4);
  EXPECT_THROW(BinaryConv2d(2, 3, 4, rng), std::invalid_argument);
}

TEST(BinaryConv2dTest, ShapeValidation) {
  Rng rng(5);
  BinaryConv2d conv(2, 3, 3, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 3, 4, 4})), std::invalid_argument);
  conv.forward(Tensor({1, 2, 4, 4}));
  EXPECT_THROW(conv.backward(Tensor({1, 2, 4, 4})), std::invalid_argument);
}

TEST(BinaryConv2dTest, BackwardWithoutForwardThrows) {
  Rng rng(5);
  BinaryConv2d conv(2, 3, 3, rng);
  EXPECT_THROW(conv.backward(Tensor({1, 3, 4, 4})), std::logic_error);
}

TEST(BinaryConv2dTest, NonBinarizedModePassesGradCheck) {
  Rng rng(6);
  BinaryConv2d conv(2, 2, 3, rng, /*binarize=*/false);
  Tensor x = Tensor::randn({2, 2, 3, 4}, rng);
  const std::vector<int> labels = {1, 0};

  const auto flatten_logits = [](const Tensor& y) {
    // Collapse (B, O, H, W) to (B, O) by summing the spatial plane so the
    // CE loss can drive the check.
    const std::size_t batch = y.dim(0);
    const std::size_t o = y.dim(1);
    const std::size_t plane = y.dim(2) * y.dim(3);
    Tensor logits({batch, o});
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t c = 0; c < o; ++c) {
        float s = 0.0f;
        for (std::size_t p = 0; p < plane; ++p) {
          s += y.flat()[(b * o + c) * plane + p];
        }
        logits.at(b, c) = s;
      }
    }
    return logits;
  };

  const auto loss_fn = [&]() {
    BinaryConv2d copy = conv;
    return softmax_cross_entropy(flatten_logits(copy.forward(x)), labels)
        .loss;
  };

  conv.zero_grad();
  const Tensor y = conv.forward(x);
  const LossResult loss =
      softmax_cross_entropy(flatten_logits(y), labels);
  // Expand (B, O) gradient back over the plane.
  Tensor gy(y.shape());
  const std::size_t plane = y.dim(2) * y.dim(3);
  for (std::size_t b = 0; b < y.dim(0); ++b) {
    for (std::size_t c = 0; c < y.dim(1); ++c) {
      for (std::size_t p = 0; p < plane; ++p) {
        gy.flat()[(b * y.dim(1) + c) * plane + p] =
            loss.grad_logits.at(b, c);
      }
    }
  }
  const Tensor gx = conv.backward(gy);

  const auto wres = check_param_gradient(loss_fn, *conv.params()[0].value,
                                         *conv.params()[0].grad);
  EXPECT_TRUE(wres.passed) << "weight max rel err " << wres.max_rel_error;
  const auto xres = check_input_gradient(loss_fn, x, gx);
  EXPECT_TRUE(xres.passed) << "input max rel err " << xres.max_rel_error;
}

TEST(BinaryConv2dTest, SteMasksOutOfWindowWeights) {
  Rng rng(7);
  BinaryConv2d conv(1, 1, 3, rng);
  Tensor& w = *conv.params()[0].value;
  w.fill(0.5f);
  w.at(0, 0) = 3.0f;  // blocked by the STE window
  conv.zero_grad();
  conv.forward(Tensor::full({1, 1, 4, 4}, 1.0f));
  conv.backward(Tensor::full({1, 1, 4, 4}, 1.0f));
  const Tensor& g = *conv.params()[0].grad;
  EXPECT_EQ(g.at(0, 0), 0.0f);
  EXPECT_NE(g.at(0, 1), 0.0f);
}

}  // namespace
}  // namespace univsa
