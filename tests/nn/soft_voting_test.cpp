#include "univsa/nn/soft_voting_head.h"

#include <gtest/gtest.h>

#include "univsa/nn/loss.h"

namespace univsa {
namespace {

TEST(SoftVotingTest, SingleVoterMatchesScaledBinaryLinear) {
  Rng rng(1);
  SoftVotingHead head(6, 3, 1, rng);
  Rng rng2(1);
  BinaryLinear ref(6, 3, rng2);

  const Tensor s = Tensor::rand_sign({2, 6}, rng);
  const Tensor logits = head.forward(s);
  const Tensor sims = ref.forward(s);
  // The head applies its learnable scale γ on top of the voter output.
  const float gamma = 4.0f / 6.0f;
  EXPECT_TRUE(allclose(logits, sims.mul(gamma), 1e-4f));
}

TEST(SoftVotingTest, LogitsAreVoterAverages) {
  Rng rng(2);
  const std::size_t voters = 3;
  SoftVotingHead head(8, 2, voters, rng);
  const Tensor s = Tensor::rand_sign({1, 8}, rng);
  const Tensor logits = head.forward(s);

  // Reconstruct from each voter's class vectors (Eq. 4).
  const float gamma = 4.0f / 8.0f;
  for (std::size_t c = 0; c < 2; ++c) {
    float sum = 0.0f;
    for (std::size_t t = 0; t < voters; ++t) {
      const Tensor cv = head.binary_class_vectors(t);
      for (std::size_t j = 0; j < 8; ++j) {
        sum += cv.at(c, j) * s.at(0, j);
      }
    }
    EXPECT_NEAR(logits.at(0, c), gamma * sum / voters, 1e-4f);
  }
}

TEST(SoftVotingTest, ScaleDoesNotChangeArgmax) {
  Rng rng(3);
  SoftVotingHead head(16, 4, 3, rng);
  const Tensor s = Tensor::rand_sign({5, 16}, rng);
  const Tensor logits = head.forward(s);
  // γ > 0 rescales logits; the argmax must equal the argmax of the raw
  // voter-sum — which is what the deployed model computes (Eq. 4).
  for (std::size_t b = 0; b < 5; ++b) {
    long long best_sum = -1LL << 60;
    std::size_t best = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      long long sum = 0;
      for (std::size_t t = 0; t < 3; ++t) {
        const Tensor cv = head.binary_class_vectors(t);
        for (std::size_t j = 0; j < 16; ++j) {
          sum += static_cast<long long>(cv.at(c, j) * s.at(b, j));
        }
      }
      if (sum > best_sum) {
        best_sum = sum;
        best = c;
      }
    }
    std::size_t logit_best = 0;
    for (std::size_t c = 1; c < 4; ++c) {
      if (logits.at(b, c) > logits.at(b, logit_best)) logit_best = c;
    }
    EXPECT_EQ(logit_best, best);
  }
}

TEST(SoftVotingTest, BackwardSplitsGradientAcrossVoters) {
  Rng rng(4);
  SoftVotingHead head(4, 2, 2, rng);
  const Tensor s = Tensor::rand_sign({1, 4}, rng);
  head.zero_grad();
  head.forward(s);
  const Tensor gs = head.backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_EQ(gs.dim(0), 1u);
  EXPECT_EQ(gs.dim(1), 4u);
  // Scale gradient accumulated.
  const auto params = head.params();
  const Param& scale = params.back();
  EXPECT_EQ(scale.value->size(), 1u);
  EXPECT_NE((*scale.grad)[0], 0.0f);
}

TEST(SoftVotingTest, ParamCountIsVotersPlusScale) {
  Rng rng(5);
  SoftVotingHead head(4, 2, 3, rng);
  EXPECT_EQ(head.params().size(), 4u);
  EXPECT_EQ(head.voters(), 3u);
  EXPECT_EQ(head.classes(), 2u);
}

TEST(SoftVotingTest, RejectsZeroVoters) {
  Rng rng(6);
  EXPECT_THROW(SoftVotingHead(4, 2, 0, rng), std::invalid_argument);
}

TEST(SoftVotingTest, VoterIndexValidated) {
  Rng rng(7);
  SoftVotingHead head(4, 2, 2, rng);
  EXPECT_THROW(head.binary_class_vectors(2), std::invalid_argument);
}

}  // namespace
}  // namespace univsa
