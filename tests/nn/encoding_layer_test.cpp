#include "univsa/nn/encoding_layer.h"

#include <gtest/gtest.h>

#include "univsa/nn/grad_check.h"
#include "univsa/nn/loss.h"

namespace univsa {
namespace {

TEST(EncodingLayerTest, ForwardMatchesNaiveContraction) {
  Rng rng(1);
  EncodingLayer layer(3, 4, rng);
  const Tensor u = Tensor::rand_sign({2, 3, 4}, rng);
  const Tensor z = layer.forward(u);
  const Tensor f = layer.binary_weight();
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t j = 0; j < 4; ++j) {
      float expected = 0.0f;
      for (std::size_t g = 0; g < 3; ++g) {
        expected += f.at(g, j) * u.at(b, g, j);
      }
      EXPECT_NEAR(z.at(b, j), expected, 1e-5f);
    }
  }
}

TEST(EncodingLayerTest, SingleGroupWithPositiveWeightsIsIdentity) {
  Rng rng(2);
  EncodingLayer layer(1, 5, rng);
  layer.latent_weight();
  Tensor& w = *layer.params()[0].value;
  w.fill(0.5f);  // sgn -> +1 everywhere
  const Tensor u = Tensor::rand_sign({3, 1, 5}, rng);
  const Tensor z = layer.forward(u);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(z.at(b, j), u.at(b, 0, j));
    }
  }
}

TEST(EncodingLayerTest, ShapeValidation) {
  Rng rng(3);
  EncodingLayer layer(3, 4, rng);
  EXPECT_THROW(layer.forward(Tensor({2, 4, 4})), std::invalid_argument);
  EXPECT_THROW(layer.forward(Tensor({2, 3})), std::invalid_argument);
  layer.forward(Tensor({2, 3, 4}));
  EXPECT_THROW(layer.backward(Tensor({2, 3})), std::invalid_argument);
}

TEST(EncodingLayerTest, NonBinarizedModePassesGradCheck) {
  Rng rng(4);
  EncodingLayer layer(3, 2, rng, /*binarize=*/false);
  Tensor u = Tensor::randn({4, 3, 2}, rng);
  const std::vector<int> labels = {0, 1, 1, 0};

  const auto loss_fn = [&]() {
    EncodingLayer copy = layer;
    return softmax_cross_entropy(copy.forward(u), labels).loss;
  };

  layer.zero_grad();
  const LossResult loss =
      softmax_cross_entropy(layer.forward(u), labels);
  const Tensor gu = layer.backward(loss.grad_logits);

  const auto wres = check_param_gradient(loss_fn, *layer.params()[0].value,
                                         *layer.params()[0].grad);
  EXPECT_TRUE(wres.passed) << wres.max_rel_error;
  const auto ures = check_input_gradient(loss_fn, u, gu);
  EXPECT_TRUE(ures.passed) << ures.max_rel_error;
}

TEST(EncodingLayerTest, SteMasksOutOfWindowWeights) {
  Rng rng(5);
  EncodingLayer layer(2, 2, rng);
  Tensor& w = *layer.params()[0].value;
  w.fill(0.1f);
  w.at(0, 0) = -5.0f;
  layer.zero_grad();
  layer.forward(Tensor::full({1, 2, 2}, 1.0f));
  layer.backward(Tensor::full({1, 2}, 1.0f));
  const Tensor& g = *layer.params()[0].grad;
  EXPECT_EQ(g.at(0, 0), 0.0f);
  EXPECT_NE(g.at(0, 1), 0.0f);
}

TEST(EncodingLayerTest, ZeroInputLanesContributeNothing) {
  // DVP padding: a zero lane must not move the accumulation.
  Rng rng(6);
  EncodingLayer layer(2, 3, rng);
  Tensor u = Tensor::rand_sign({1, 2, 3}, rng);
  const Tensor z_full = layer.forward(u);
  Tensor u_padded = u;
  u_padded.at(0, 1, 2) = 0.0f;
  const Tensor z_pad = layer.forward(u_padded);
  const Tensor f = layer.binary_weight();
  EXPECT_NEAR(z_pad.at(0, 2), z_full.at(0, 2) - f.at(1, 2) * u.at(0, 1, 2),
              1e-5f);
}

}  // namespace
}  // namespace univsa
