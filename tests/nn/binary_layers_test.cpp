#include "univsa/nn/binary_linear.h"

#include <gtest/gtest.h>

#include <cmath>

#include "univsa/nn/grad_check.h"
#include "univsa/nn/loss.h"

namespace univsa {
namespace {

TEST(BinaryLinearTest, ForwardUsesSignOfWeights) {
  Rng rng(1);
  BinaryLinear layer(3, 1, rng);
  Tensor& w = *layer.params()[0].value;
  w.at(0, 0) = 0.7f;
  w.at(0, 1) = -0.2f;
  w.at(0, 2) = 0.0f;  // sgn(0) = +1
  const Tensor x = Tensor::from_data({1, 3}, {1.0f, 1.0f, 1.0f});
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.at(0, 0), 1.0f - 1.0f + 1.0f);
}

TEST(BinaryLinearTest, BinaryWeightIsBipolar) {
  Rng rng(2);
  BinaryLinear layer(5, 4, rng);
  const Tensor bw = layer.binary_weight();
  for (const auto v : bw.flat()) {
    EXPECT_TRUE(v == 1.0f || v == -1.0f);
  }
}

TEST(BinaryLinearTest, SteMasksGradientOutsideClipWindow) {
  Rng rng(3);
  BinaryLinear layer(2, 1, rng);
  Tensor& w = *layer.params()[0].value;
  w.at(0, 0) = 2.0f;   // outside |w| <= 1: gradient must be blocked
  w.at(0, 1) = 0.5f;   // inside: gradient flows
  layer.zero_grad();
  const Tensor x = Tensor::from_data({1, 2}, {1.0f, 1.0f});
  layer.forward(x);
  layer.backward(Tensor::from_data({1, 1}, {1.0f}));
  const Tensor& g = *layer.params()[0].grad;
  EXPECT_EQ(g.at(0, 0), 0.0f);
  EXPECT_NE(g.at(0, 1), 0.0f);
}

TEST(BinaryLinearTest, InputGradientUsesBinarizedWeights) {
  Rng rng(4);
  BinaryLinear layer(2, 1, rng);
  Tensor& w = *layer.params()[0].value;
  w.at(0, 0) = 0.3f;   // sgn -> +1
  w.at(0, 1) = -0.8f;  // sgn -> -1
  layer.forward(Tensor::from_data({1, 2}, {1.0f, 1.0f}));
  const Tensor gx = layer.backward(Tensor::from_data({1, 1}, {2.0f}));
  EXPECT_EQ(gx.at(0, 0), 2.0f);
  EXPECT_EQ(gx.at(0, 1), -2.0f);
}

TEST(BinaryLinearTest, NonBinarizedModePassesGradCheck) {
  Rng rng(5);
  BinaryLinear layer(3, 2, rng, /*binarize=*/false);
  Tensor x = Tensor::randn({4, 3}, rng);
  const std::vector<int> labels = {1, 0, 1, 0};

  const auto loss_fn = [&]() {
    BinaryLinear copy = layer;
    return softmax_cross_entropy(copy.forward(x), labels).loss;
  };

  layer.zero_grad();
  const LossResult loss =
      softmax_cross_entropy(layer.forward(x), labels);
  const Tensor gx = layer.backward(loss.grad_logits);

  const auto wres = check_param_gradient(loss_fn, *layer.params()[0].value,
                                         *layer.params()[0].grad);
  EXPECT_TRUE(wres.passed) << wres.max_rel_error;
  const auto xres = check_input_gradient(loss_fn, x, gx);
  EXPECT_TRUE(xres.passed) << xres.max_rel_error;
}

TEST(BinaryLinearTest, ParamsMarkLatentClip) {
  Rng rng(6);
  BinaryLinear binarized(2, 2, rng, true);
  BinaryLinear plain(2, 2, rng, false);
  EXPECT_TRUE(binarized.params()[0].clip_latent);
  EXPECT_FALSE(plain.params()[0].clip_latent);
}

TEST(BinaryLinearTest, ShapeValidation) {
  Rng rng(7);
  BinaryLinear layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 4})), std::invalid_argument);
  EXPECT_THROW(layer.backward(Tensor({1, 2})), std::logic_error);
}

}  // namespace
}  // namespace univsa
