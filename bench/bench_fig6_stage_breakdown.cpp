// Fig. 6 — per-stage hardware overhead of UniVSA: LUTs and execution
// cycles of DVP / BiConv / Encoding / Similarity for every task, plus the
// memory-footprint observation (K is tiny; F and C dominate when the
// input or class count is large).
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/resource_model.h"
#include "univsa/hw/timing_model.h"
#include "univsa/report/table.h"
#include "univsa/vsa/memory_model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  std::puts("== Fig. 6: per-stage hardware overhead ==");
  report::TextTable luts({"Benchmark", "DVP LUTs", "BiConv LUTs",
                          "Encode LUTs", "Similar LUTs", "Buffers",
                          "BiConv share"});
  for (const auto& b : bench::selected_benchmarks(args)) {
    const hw::ResourceEstimate e = hw::estimate_resources(b.config);
    const double share = e.biconv_luts / e.total_luts() * 100.0;
    luts.add_row({b.spec.name, report::fmt(e.dvp_luts, 0),
                  report::fmt(e.biconv_luts, 0),
                  report::fmt(e.encoding_luts, 0),
                  report::fmt(e.similarity_luts, 0),
                  report::fmt(e.buffer_luts, 0),
                  report::fmt(share, 1) + "%"});
  }
  std::fputs(luts.to_string().c_str(), stdout);

  std::puts("\nExecution cycles per stage:");
  report::TextTable cyc({"Benchmark", "DVP", "BiConv", "Encode",
                         "Similar", "BiConv share"});
  for (const auto& b : bench::selected_benchmarks(args)) {
    const hw::StageCycles s = hw::stage_cycles(b.config);
    const double share =
        static_cast<double>(s.biconv) / static_cast<double>(s.total()) *
        100.0;
    cyc.add_row({b.spec.name, std::to_string(s.dvp),
                 std::to_string(s.biconv), std::to_string(s.encoding),
                 std::to_string(s.similarity),
                 report::fmt(share, 1) + "%"});
  }
  std::fputs(cyc.to_string().c_str(), stdout);

  std::puts("\nMemory footprint per vector set (bits, Eq. 5):");
  report::TextTable mem({"Benchmark", "V", "K (kernels)", "F (features)",
                         "C (classes)", "K share", "F+C share"});
  for (const auto& b : bench::selected_benchmarks(args)) {
    const vsa::MemoryBreakdown m = vsa::memory_breakdown(b.config);
    const double total = static_cast<double>(m.total_bits());
    mem.add_row(
        {b.spec.name, std::to_string(m.value_vectors),
         std::to_string(m.conv_kernels), std::to_string(m.feature_vectors),
         std::to_string(m.class_vectors),
         report::fmt(m.conv_kernels / total * 100.0, 1) + "%",
         report::fmt((m.feature_vectors + m.class_vectors) / total * 100.0,
                     1) +
             "%"});
  }
  std::fputs(mem.to_string().c_str(), stdout);

  std::puts(
      "\nShape checks: BiConv dominates LUTs and cycles on every task "
      "(the motivation for sequentializing DVP/Encoding/Similarity, "
      "Sec. V-C); the kernel store K is a small slice of memory while "
      "F and C dominate.");
  return 0;
}
