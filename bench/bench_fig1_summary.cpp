// Fig. 1 — the qualitative comparison between UniVSA, VSA-H (LeHDC),
// LDC, and other lightweight ML (QNN/BNN/SVM/KNN) across five axes:
// accuracy, memory, latency, power, and resource usage.
//
// Reconstructed from this repo's Table II / III / IV machinery: each axis
// is scored 1 (worst) .. 5 (best) by order-of-magnitude banding, the same
// qualitative story the paper's radar chart tells.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/accelerator.h"
#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"

namespace {

int band(double value, const std::vector<double>& thresholds) {
  // thresholds ascending; score = 5 - #thresholds exceeded.
  int score = 5;
  for (const double t : thresholds) {
    if (value > t) --score;
  }
  return std::max(score, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace univsa;
  bench::parse_args(argc, argv);

  // UniVSA measured on the ISOLET configuration (the Table III row);
  // competitors use the paper's cited constants.
  const hw::HardwareReport uni =
      hw::report_for(data::find_benchmark("ISOLET").config);

  struct System {
    std::string name;
    double accuracy;   // Table II averages / representative values
    double memory_kb;
    double latency_ms;
    double power_w;
    double kiloluts;
  };
  const std::vector<System> systems = {
      {"UniVSA", 0.9445, uni.memory_kb, uni.latency_ms, uni.power_w,
       uni.kiloluts},
      {"VSA-H (LeHDC)", 0.8816, 1290.0, 1.0, 9.52, 165.0},
      {"LDC", 0.9225, 15.05, 0.004, 0.016, 0.75},
      {"SVM", 0.9124, 4240.0, 14.29, 3.2, 31.85},
      {"KNN", 0.8685, 2000.0, 69.12, 24.0, 135.0},
      {"BNN/QNN", 0.95, 1450.0, 0.36, 4.1, 51.44},
  };

  std::puts("== Fig. 1: qualitative comparison (5 = best, 1 = worst) ==");
  report::TextTable table({"System", "Accuracy", "Memory", "Latency",
                           "Power", "Resources"});
  for (const auto& s : systems) {
    table.add_row(
        {s.name, std::to_string(band(1.0 - s.accuracy,  // lower is better
                                     {0.06, 0.08, 0.10, 0.13})),
         std::to_string(band(s.memory_kb, {10, 100, 1000, 3000})),
         std::to_string(band(s.latency_ms, {0.01, 0.1, 1.0, 20.0})),
         std::to_string(band(s.power_w, {0.05, 0.5, 3.0, 10.0})),
         std::to_string(band(s.kiloluts, {1, 10, 50, 130}))});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nUnderlying values:");
  report::TextTable raw({"System", "acc", "KB", "ms", "W", "kLUT"});
  for (const auto& s : systems) {
    raw.add_row({s.name, report::fmt(s.accuracy), report::fmt(s.memory_kb, 2),
                 report::fmt(s.latency_ms, 3), report::fmt(s.power_w, 3),
                 report::fmt(s.kiloluts, 2)});
  }
  std::fputs(raw.to_string().c_str(), stdout);

  std::puts(
      "\nShape check: UniVSA is the only system scoring >=4 on accuracy "
      "while staying in the top memory/power bands (the paper's Fig. 1 "
      "claim).");
  return 0;
}
