// Fig. 4 — ablation of the three UniVSA extensions over plain binary VSA
// on the EEGMMI-style task: inference accuracy (bars) and memory
// footprint (line) across vector dimensions.
//
// Variants (Sec. III-B):
//   base    — plain LDC binary VSA at dimension D,
//   +DVP    — discriminated value projection (no conv, single head),
//   +BiConv — binary feature extraction (O = D conv channels),
//   +SV     — soft voting (Θ = 3 similarity layers),
//   UniVSA  — all three.
// Paper shape: BiConv gives the largest, most stable gain; DVP catches up
// at larger D; SV helps most at small D; all of them cost <6% memory.
#include <cstdio>

#include "bench_common.h"
#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

namespace {

using namespace univsa;

struct VariantResult {
  double accuracy = 0.0;
  double memory_kb = 0.0;
};

/// Geometry of the ablation task (EEGMMI-like, reduced in --fast mode).
vsa::ModelConfig task_config(const data::Benchmark& b, std::size_t dim,
                             bool conv, bool dvp, std::size_t voters) {
  vsa::ModelConfig c = b.config;
  c.Theta = voters;
  if (conv) {
    // BiConv variants: D_H fixed small, O plays the capacity role ~ D.
    c.D_H = 8;
    c.D_L = dvp ? 2 : 8;
    c.D_K = 3;
    c.O = dim;
  } else {
    // Per-feature variants: D is the value-vector dimension.
    c.D_H = dim;
    c.D_L = dvp ? std::max<std::size_t>(1, dim / 4) : dim;
    c.D_K = 1;
    c.O = 1;
  }
  return c;
}

double memory_of(const vsa::ModelConfig& c, bool conv, bool dvp) {
  if (conv) return vsa::memory_kb(c);
  // No-conv variants store V (M·(D_H [+D_L])), F (N·D), C (Θ·C·D).
  const std::size_t v_bits = c.M * (dvp ? c.D_H + c.D_L : c.D_H);
  const std::size_t bits = v_bits + c.features() * c.D_H +
                           c.Theta * c.C * c.D_H;
  return static_cast<double>(bits) / 8.0 / 1000.0;
}

VariantResult run_variant(const data::Dataset& train,
                          const data::Dataset& test,
                          const vsa::ModelConfig& c, bool conv, bool dvp,
                          bool fast) {
  train::NetworkOptions net;
  net.use_conv = conv;
  net.use_dvp = dvp;
  train::TrainOptions opts;
  opts.epochs = fast ? 6 : 15;
  opts.seed = 7;
  auto trained = train::train_network(c, net, train, opts);
  return {trained.network->evaluate(test), memory_of(c, conv, dvp)};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  // Fig. 4 uses the EEGMMI dataset (Sec. III-B).
  const auto& b = data::find_benchmark("EEGMMI");
  data::SyntheticSpec spec = bench::sized_spec(b, args.fast);
  if (args.fast) {
    spec.windows = 8;
    spec.length = 16;
  }
  const data::SyntheticResult ds = data::generate(spec);
  data::Benchmark geom = b;
  geom.config.W = spec.windows;
  geom.config.L = spec.length;

  const std::vector<std::size_t> dims =
      args.fast ? std::vector<std::size_t>{8, 16}
                : std::vector<std::size_t>{8, 16, 24, 32};

  std::puts("== Fig. 4: ablation of DVP / BiConv / SV over binary VSA ==");
  report::TextTable table({"D", "base acc", "+DVP acc", "+BiConv acc",
                           "+SV acc", "UniVSA acc", "base KB",
                           "UniVSA KB"});
  std::vector<std::vector<std::string>> csv_rows;

  double gain_dvp = 0.0;
  double gain_conv = 0.0;
  double gain_sv = 0.0;
  double gain_uni = 0.0;

  for (const std::size_t dim : dims) {
    std::printf("[D=%zu] training 5 variants...\n", dim);
    const auto base =
        run_variant(ds.train, ds.test,
                    task_config(geom, dim, false, false, 1), false, false,
                    args.fast);
    const auto dvp =
        run_variant(ds.train, ds.test,
                    task_config(geom, dim, false, true, 1), false, true,
                    args.fast);
    const auto conv =
        run_variant(ds.train, ds.test,
                    task_config(geom, dim, true, false, 1), true, false,
                    args.fast);
    const auto sv =
        run_variant(ds.train, ds.test,
                    task_config(geom, dim, false, false, 3), false, false,
                    args.fast);
    const auto uni =
        run_variant(ds.train, ds.test,
                    task_config(geom, dim, true, true, 3), true, true,
                    args.fast);

    gain_dvp += dvp.accuracy - base.accuracy;
    gain_conv += conv.accuracy - base.accuracy;
    gain_sv += sv.accuracy - base.accuracy;
    gain_uni += uni.accuracy - base.accuracy;

    table.add_row({std::to_string(dim), report::fmt(base.accuracy),
                   report::fmt(dvp.accuracy), report::fmt(conv.accuracy),
                   report::fmt(sv.accuracy), report::fmt(uni.accuracy),
                   report::fmt(base.memory_kb, 2),
                   report::fmt(uni.memory_kb, 2)});
    csv_rows.push_back({std::to_string(dim), report::fmt(base.accuracy),
                        report::fmt(dvp.accuracy),
                        report::fmt(conv.accuracy),
                        report::fmt(sv.accuracy),
                        report::fmt(uni.accuracy),
                        report::fmt(base.memory_kb, 2),
                        report::fmt(uni.memory_kb, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  const auto n = static_cast<double>(dims.size());
  std::puts("\nMean accuracy gain over base binary VSA:");
  std::printf("  +DVP    %+0.4f\n", gain_dvp / n);
  std::printf("  +BiConv %+0.4f\n", gain_conv / n);
  std::printf("  +SV     %+0.4f\n", gain_sv / n);
  std::printf("  UniVSA  %+0.4f\n", gain_uni / n);

  const auto paper = report::paper_fig4_overheads();
  std::puts("\nMemory overhead of the extensions (paper Sec. III-B):");
  std::printf("  paper: +%.2f%% DVP, +%.2f%% BiConv, +%.2f%% SV "
              "(kilobyte-scale base)\n",
              paper.dvp_percent, paper.biconv_percent, paper.sv_percent);

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"dim", "base", "dvp", "biconv", "sv", "univsa",
                       "base_kb", "univsa_kb"},
                      csv_rows);
  }
  return 0;
}
