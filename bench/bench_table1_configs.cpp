// Table I — benchmark configurations, plus the Eq. 5 memory cross-check
// against Table II's UniVSA memory column (exact, the reproduction's
// anchor).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"
#include "univsa/vsa/memory_model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  std::puts("== Table I: benchmark configurations (verbatim) ==");
  report::TextTable table(
      {"Benchmark", "Domain", "Classes", "Input (W,L)",
       "(D_H,D_L,D_K,O,Θ)", "Eq.5 memory KB", "Table II KB", "match"});

  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& b : bench::selected_benchmarks(args)) {
    const auto& c = b.config;
    double paper_kb = 0.0;
    for (const auto& row : report::paper_table2()) {
      if (row.task == b.spec.name) paper_kb = row.univsa_kb;
    }
    const double model_kb = vsa::memory_kb(c);
    const bool match = std::abs(model_kb - paper_kb) < 0.005;
    std::vector<std::string> cells = {
        b.spec.name,
        data::to_string(b.spec.domain),
        std::to_string(c.C),
        "(" + std::to_string(c.W) + "," + std::to_string(c.L) + ")",
        "(" + std::to_string(c.D_H) + "," + std::to_string(c.D_L) + "," +
            std::to_string(c.D_K) + "," + std::to_string(c.O) + "," +
            std::to_string(c.Theta) + ")",
        report::fmt(model_kb, 2),
        report::fmt(paper_kb, 2),
        match ? "exact" : "DIFFERS"};
    table.add_row(cells);
    csv_rows.push_back(std::move(cells));
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nPer-component Eq. 5 breakdown (bits):");
  report::TextTable parts({"Benchmark", "V", "K", "F", "C", "total"});
  for (const auto& b : bench::selected_benchmarks(args)) {
    const auto mb = vsa::memory_breakdown(b.config);
    parts.add_row({b.spec.name, std::to_string(mb.value_vectors),
                   std::to_string(mb.conv_kernels),
                   std::to_string(mb.feature_vectors),
                   std::to_string(mb.class_vectors),
                   std::to_string(mb.total_bits())});
  }
  std::fputs(parts.to_string().c_str(), stdout);

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"benchmark", "domain", "classes", "input",
                       "config", "model_kb", "paper_kb", "match"},
                      csv_rows);
  }
  return 0;
}
