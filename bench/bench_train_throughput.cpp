// Training fast-path throughput (blocked GEMM + zero-allocation layers)
// and parallel co-design search scaling.
//
// Three sections, all recorded in BENCH_train.json:
//   1. Single-thread GEMM throughput on the five ISOLET training shapes,
//      measured against verbatim copies of the seed's triple-loop kernels
//      (per-shape and flop-weighted aggregate speedup — the acceptance
//      bar is an aggregate >= 3x).
//   2. End-to-end training throughput (samples/s per epoch) on ISOLET.
//   3. Evolutionary search candidate evaluation rate, serial vs parallel
//      over the thread pool, with a bit-identical trajectory assertion.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "univsa/report/table.h"
#include "univsa/search/evolutionary.h"
#include "univsa/tensor/gemm.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

namespace {

using namespace univsa;

// ---- Seed GEMM kernels (verbatim triple-loop baselines from PR 0) ----

void seed_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    std::memset(ci, 0, n * sizeof(float));
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void seed_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

void seed_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    std::memset(ci, 0, n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
      const float api = a[p * m + i];
      if (api == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// Repeats `fn` until `min_time` seconds elapse; returns seconds per call.
template <class F>
double time_per_call(F&& fn, double min_time) {
  fn();  // warm-up
  std::size_t reps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < min_time);
  return elapsed / static_cast<double>(reps);
}

struct GemmShape {
  GemmLayout layout;
  std::size_t m, n, k;
  const char* name;
};

struct GemmRow {
  const char* name = nullptr;
  double flops = 0.0;
  double seed_s = 0.0;
  double new_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const double min_time = args.fast ? 0.05 : 0.3;

  // ---- 1. GEMM on the ISOLET training shapes (single-thread) ----
  const vsa::ModelConfig isolet = data::find_benchmark("ISOLET").config;
  const train::TrainOptions defaults;
  const std::size_t batch = defaults.batch_size;
  const std::size_t hw = isolet.W * isolet.L;           // conv plane
  const std::size_t ckk = isolet.D_H * isolet.D_K * isolet.D_K;
  const GemmShape shapes[] = {
      {GemmLayout::kNN, isolet.O, hw, ckk, "conv-fwd NN"},
      {GemmLayout::kNT, batch, isolet.C, hw, "head-fwd NT"},
      {GemmLayout::kTN, isolet.C, hw, batch, "head-dW TN"},
      {GemmLayout::kNT, isolet.O, ckk, hw, "conv-dW NT"},
      {GemmLayout::kTN, ckk, hw, isolet.O, "conv-dx TN"},
  };

  // The acceptance metric is single-thread kernel speedup; the pool is
  // restored to the requested size for the training / search sections.
  set_global_pool_threads(1);

  std::printf("== Blocked GEMM vs seed kernels (ISOLET shapes, "
              "1 thread) ==\n");
  report::TextTable gemm_table({"shape (layout m×n×k)", "seed GF/s",
                                "blocked GF/s", "speedup"});
  std::vector<GemmRow> rows;
  Rng rng(0x5eed);
  double total_flops = 0.0;
  double total_seed_s = 0.0;
  double total_new_s = 0.0;
  for (const auto& s : shapes) {
    std::vector<float> a(s.m * s.k);
    std::vector<float> b(s.k * s.n);
    std::vector<float> c(s.m * s.n);
    for (auto& x : a) x = static_cast<float>(rng.normal());
    for (auto& x : b) x = static_cast<float>(rng.normal());

    const double new_s = time_per_call(
        [&] { gemm(s.layout, s.m, s.n, s.k, a.data(), b.data(), c.data()); },
        min_time);
    const double seed_s = time_per_call(
        [&] {
          switch (s.layout) {
            case GemmLayout::kNN:
              seed_nn(s.m, s.n, s.k, a.data(), b.data(), c.data());
              break;
            case GemmLayout::kNT:
              seed_nt(s.m, s.n, s.k, a.data(), b.data(), c.data());
              break;
            case GemmLayout::kTN:
              seed_tn(s.m, s.n, s.k, a.data(), b.data(), c.data());
              break;
          }
        },
        min_time);

    GemmRow row;
    row.name = s.name;
    row.flops = 2.0 * static_cast<double>(s.m) *
                static_cast<double>(s.n) * static_cast<double>(s.k);
    row.seed_s = seed_s;
    row.new_s = new_s;
    rows.push_back(row);
    total_flops += row.flops;
    total_seed_s += seed_s;
    total_new_s += new_s;

    char label[64];
    std::snprintf(label, sizeof(label), "%s %zux%zux%zu", s.name, s.m,
                  s.n, s.k);
    gemm_table.add_row({label, report::fmt(row.flops / seed_s / 1e9, 2),
                        report::fmt(row.flops / new_s / 1e9, 2),
                        report::fmt(seed_s / new_s, 2)});
  }
  // Aggregate over the training mix: the same five products timed
  // back-to-back (flop-weighted — each kernel contributes its real share
  // of a training step's GEMM time).
  const double aggregate_speedup = total_seed_s / total_new_s;
  gemm_table.add_row({"aggregate (training mix)",
                      report::fmt(total_flops / total_seed_s / 1e9, 2),
                      report::fmt(total_flops / total_new_s / 1e9, 2),
                      report::fmt(aggregate_speedup, 2)});
  std::fputs(gemm_table.to_string().c_str(), stdout);
  std::printf("\nShape check: aggregate speedup %.2fx (acceptance bar "
              "3x); the outer-product layouts (NT/TN on long k) gain "
              "the most from packing + register tiling.\n",
              aggregate_speedup);

  set_global_pool_threads(args.threads);

  // ---- 2. End-to-end training throughput (ISOLET) ----
  data::SyntheticSpec spec = data::find_benchmark("ISOLET").spec;
  spec.train_count = args.fast ? 128 : 512;
  spec.test_count = 32;
  const data::SyntheticResult ds = data::generate(spec);

  train::TrainOptions topts;
  topts.epochs = args.fast ? 2 : 5;
  topts.seed = 7;
  const auto t0 = std::chrono::steady_clock::now();
  const auto trained = train::train_univsa(isolet, ds.train, topts);
  const double train_s = seconds_since(t0);
  const double epoch_s = train_s / static_cast<double>(topts.epochs);
  const double samples_per_s =
      static_cast<double>(ds.train.size()) / epoch_s;
  std::printf("\n== Training throughput (%s, %zu samples, %zu epochs) "
              "==\n  %.2f s/epoch -> %.1f samples/s (final train acc "
              "%.4f)\n",
              spec.name.c_str(), ds.train.size(), topts.epochs, epoch_s,
              samples_per_s, trained.history.back().train_accuracy);

  // ---- 3. GA candidate evaluation: serial vs parallel ----
  data::SyntheticSpec ga_spec = data::find_benchmark("HAR").spec;
  ga_spec.windows = 8;
  ga_spec.length = 12;
  ga_spec.train_count = args.fast ? 96 : 192;
  ga_spec.test_count = 48;
  const data::SyntheticResult ga_ds = data::generate(ga_spec);

  vsa::ModelConfig task;
  task.W = ga_spec.windows;
  task.L = ga_spec.length;
  task.C = ga_spec.classes;
  task.M = ga_spec.levels;

  const search::SeededAccuracyFn oracle =
      [&](const vsa::ModelConfig& c, std::uint64_t seed) {
        train::TrainOptions o;
        o.epochs = 2;
        o.seed = seed;
        const auto r = train::train_univsa(c, ga_ds.train, o);
        return r.model.accuracy(ga_ds.test);
      };

  search::SearchSpace space;
  space.d_h = {2, 4, 8};
  space.d_l = {1, 2};
  space.o_min = 4;
  space.o_max = 24;
  search::SearchOptions sopts;
  sopts.population = args.fast ? 6 : 10;
  sopts.generations = args.fast ? 2 : 4;
  sopts.elite = 2;
  sopts.seed = 13;

  const auto run_search = [&](bool parallel) {
    search::SearchOptions o = sopts;
    o.parallel = parallel;
    const auto t = std::chrono::steady_clock::now();
    const search::SearchResult r =
        search::evolutionary_search(task, space, oracle, o);
    return std::make_pair(r, seconds_since(t));
  };

  std::printf("\n== Co-design search: candidate evaluations/s ==\n");
  const auto [serial_r, serial_s] = run_search(false);
  const auto [parallel_r, parallel_s] = run_search(true);
  const double serial_cps =
      static_cast<double>(serial_r.evaluations) / serial_s;
  const double parallel_cps =
      static_cast<double>(parallel_r.evaluations) / parallel_s;
  const std::size_t pool_threads = global_pool().thread_count();
  std::printf("  serial:   %zu candidates in %.2f s -> %.2f cand/s\n",
              serial_r.evaluations, serial_s, serial_cps);
  std::printf("  parallel: %zu candidates in %.2f s -> %.2f cand/s "
              "(%zu pool thread%s, %.2fx)\n",
              parallel_r.evaluations, parallel_s, parallel_cps,
              pool_threads, pool_threads == 1 ? "" : "s",
              parallel_cps / serial_cps);

  // Determinism contract: the parallel trajectory must match serial
  // bit-for-bit. A violation is a bench failure, not a footnote.
  bool identical = serial_r.best_config == parallel_r.best_config &&
                   serial_r.best_objective == parallel_r.best_objective &&
                   serial_r.evaluations == parallel_r.evaluations &&
                   serial_r.history.size() == parallel_r.history.size();
  for (std::size_t g = 0; identical && g < serial_r.history.size(); ++g) {
    identical = serial_r.history[g].best_objective ==
                    parallel_r.history[g].best_objective &&
                serial_r.history[g].mean_objective ==
                    parallel_r.history[g].mean_objective;
  }
  std::printf("  parallel == serial trajectory: %s\n",
              identical ? "yes (bit-identical)" : "NO — DETERMINISM BUG");

  {
    std::ofstream json("BENCH_train.json");
    json << "{\n" << bench::json_runtime_fields(args)
         << "  \"gemm_shapes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      json << "    {\"name\": \"" << r.name << "\", \"seed_gflops\": "
           << report::fmt(r.flops / r.seed_s / 1e9, 2)
           << ", \"blocked_gflops\": "
           << report::fmt(r.flops / r.new_s / 1e9, 2) << ", \"speedup\": "
           << report::fmt(r.seed_s / r.new_s, 3) << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"gemm_aggregate_speedup\": "
         << report::fmt(aggregate_speedup, 3) << ",\n"
         << "  \"train_task\": \"" << spec.name << "\",\n"
         << "  \"train_samples\": " << ds.train.size() << ",\n"
         << "  \"train_epoch_s\": " << report::fmt(epoch_s, 3) << ",\n"
         << "  \"train_samples_per_s\": " << report::fmt(samples_per_s, 1)
         << ",\n"
         << "  \"ga_pool_threads\": " << pool_threads << ",\n"
         << "  \"ga_serial_candidates_per_s\": "
         << report::fmt(serial_cps, 3) << ",\n"
         << "  \"ga_parallel_candidates_per_s\": "
         << report::fmt(parallel_cps, 3) << ",\n"
         << "  \"ga_parallel_scaling\": "
         << report::fmt(parallel_cps / serial_cps, 3) << ",\n"
         << "  \"ga_parallel_matches_serial\": "
         << (identical ? "true" : "false") << "\n"
         << "}\n";
  }
  std::puts("\nWrote BENCH_train.json");
  return identical ? 0 : 1;
}
