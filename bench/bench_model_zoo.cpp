// Multi-tenant model-zoo serving drill (docs/ZOO.md) — the acceptance
// benchmark for the versioned ModelRegistry + per-tenant serving stack:
//
//   1. Baselines: train the three heterogeneous zoo tenants
//      (KWS / ANOMALY / GESTURE) and measure each model's accuracy via
//      a direct backend call — the single-model reference.
//   2. Mixed-traffic drill: serve all tenants' test traffic interleaved
//      through ONE Server (per-tenant QoS policies active) and check
//      every answer is bit-identical to the direct backend call —
//      multi-tenant routing and per-snapshot batching change nothing.
//   3. Hot-swap drill: stream requests at one tenant from multiple
//      threads while the main thread publishes fresh model versions;
//      the RCU snapshot flip must drop zero requests.
//   4. Drift drill: replay drifted traffic through the
//      AdaptationDriver; the refreshed (hot-swapped) model must recover
//      >= 90% of the drift-induced accuracy gap on held-out data.
//
// Results land in BENCH_zoo.json (full record, includes latencies) and
// BENCH_zoo_acc.json (timing-free: per-tenant accuracies, bit-exactness,
// drop counts, recovery fraction — byte-identical across two same-seed
// runs, which CI diffs for determinism).
#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "univsa/report/table.h"
#include "univsa/runtime/adaptation.h"
#include "univsa/runtime/model_registry.h"
#include "univsa/runtime/server.h"
#include "univsa/train/univsa_trainer.h"

namespace {

using namespace univsa;

struct TenantRun {
  std::string tenant;
  const data::Benchmark* bench = nullptr;
  data::SyntheticResult data;
  std::vector<vsa::Prediction> expected;  // direct backend, per test row
  double direct_accuracy = 0.0;
  double served_accuracy = 0.0;
  bool bit_exact = true;
  double p99_us = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
};

std::string tenant_name(const std::string& bench_name) {
  std::string lower = bench_name;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return "zoo/" + lower;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const bool fast = args.fast;

  // ---- Phase 1: per-tenant baselines -----------------------------------
  auto registry = std::make_shared<runtime::ModelRegistry>();
  std::vector<TenantRun> runs;
  train::TrainOptions topt;
  topt.epochs = 10;
  topt.seed = 7;
  std::printf("== model zoo bench (%s mode, backend %s) ==\n",
              fast ? "fast" : "full", args.backend.c_str());
  for (const auto& bench : data::zoo_benchmarks()) {
    TenantRun run;
    run.tenant = tenant_name(bench.spec.name);
    run.bench = &bench;
    data::SyntheticSpec spec = bench.spec;
    if (fast) {
      spec.train_count = 240;
      spec.test_count = 120;
    }
    run.data = data::generate(spec);
    auto trained = train::train_univsa(bench.config, run.data.train, topt);
    registry->publish(run.tenant, std::move(trained.model));
    const auto backend = runtime::make_backend(
        args.backend, registry->latest(run.tenant)->model());
    run.expected.resize(run.data.test.size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < run.data.test.size(); ++i) {
      backend->predict_into(run.data.test.values(i), run.expected[i]);
      if (run.expected[i].label == run.data.test.label(i)) ++correct;
    }
    run.direct_accuracy = static_cast<double>(correct) /
                          static_cast<double>(run.data.test.size());
    std::printf("  trained %-12s -> %s (direct accuracy %.4f)\n",
                bench.spec.name.c_str(),
                registry->latest(run.tenant)->key().c_str(),
                run.direct_accuracy);
    runs.push_back(std::move(run));
  }

  // ---- Phase 2: mixed-traffic drill ------------------------------------
  runtime::ServerOptions sopt;
  sopt.backend = args.backend;
  sopt.workers = 2;
  sopt.max_batch = 16;
  sopt.max_delay_us = 50;
  sopt.tenant_policies[tenant_name("ANOMALY")] = {runtime::Priority::kHigh,
                                                  0};
  sopt.tenant_policies[tenant_name("GESTURE")] = {runtime::Priority::kLow,
                                                  256};
  std::uint64_t mixed_batches = 0;
  double mixed_mean_batch = 0.0;
  {
    runtime::Server server(registry, sopt);
    std::vector<std::vector<std::future<vsa::Prediction>>> futures(
        runs.size());
    std::size_t remaining = 0;
    for (const auto& run : runs) remaining += run.data.test.size();
    for (std::size_t i = 0; remaining > 0; ++i) {
      for (std::size_t t = 0; t < runs.size(); ++t) {
        if (i >= runs[t].data.test.size()) continue;
        runtime::SubmitOptions so;
        so.tenant = runs[t].tenant;
        so.priority = runs[t].tenant == tenant_name("ANOMALY")
                          ? runtime::Priority::kHigh
                          : runtime::Priority::kNormal;
        futures[t].push_back(
            server.submit(runs[t].data.test.values(i), so));
        --remaining;
      }
    }
    for (std::size_t t = 0; t < runs.size(); ++t) {
      std::size_t correct = 0;
      for (std::size_t i = 0; i < futures[t].size(); ++i) {
        const vsa::Prediction got = futures[t][i].get();
        if (got.label != runs[t].expected[i].label ||
            got.scores != runs[t].expected[i].scores) {
          runs[t].bit_exact = false;
        }
        if (got.label == runs[t].data.test.label(i)) ++correct;
      }
      runs[t].served_accuracy =
          static_cast<double>(correct) /
          static_cast<double>(futures[t].size());
    }
    const runtime::ServerStats stats = server.stats();
    mixed_batches = stats.batches;
    mixed_mean_batch = stats.mean_batch();
    for (auto& run : runs) {
      const auto it = stats.tenants.find(run.tenant);
      if (it == stats.tenants.end()) continue;
      run.completed = it->second.completed;
      run.shed = it->second.shed;
      run.p99_us =
          static_cast<double>(it->second.latency_ns.percentile(0.99)) *
          1e-3;
    }
  }
  report::TextTable mixed({"tenant", "direct acc", "served acc",
                           "bit-exact", "completed", "p99 (us)"});
  bool all_bit_exact = true;
  for (const auto& run : runs) {
    all_bit_exact = all_bit_exact && run.bit_exact;
    mixed.add_row({run.tenant, report::fmt(run.direct_accuracy),
                   report::fmt(run.served_accuracy),
                   run.bit_exact ? "yes" : "NO",
                   std::to_string(run.completed),
                   report::fmt(run.p99_us, 1)});
  }
  std::printf("\nmixed-traffic drill: %llu batches (mean %.1f)\n",
              static_cast<unsigned long long>(mixed_batches),
              mixed_mean_batch);
  std::fputs(mixed.to_string().c_str(), stdout);

  // ---- Phase 3: hot-swap drill -----------------------------------------
  // Two submitter threads stream the KWS tenant while the main thread
  // publishes refreshed versions mid-flight. Every submitted request
  // must complete — the RCU flip never drops or errors a request.
  const std::string swap_tenant = tenant_name("KWS");
  const TenantRun* kws = nullptr;
  for (const auto& run : runs) {
    if (run.tenant == swap_tenant) kws = &run;
  }
  const std::size_t swap_per_thread = fast ? 400 : 1500;
  const std::size_t swap_publishes = 4;
  std::atomic<std::uint64_t> swap_completed{0}, swap_failed{0};
  {
    runtime::Server server(registry, sopt);
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < 2; ++t) {
      submitters.emplace_back([&, t] {
        runtime::SubmitOptions so;
        so.tenant = swap_tenant;
        std::vector<std::future<vsa::Prediction>> futures;
        futures.reserve(swap_per_thread);
        for (std::size_t i = 0; i < swap_per_thread; ++i) {
          futures.push_back(server.submit(
              kws->data.test.values((t + 2 * i) %
                                    kws->data.test.size()),
              so));
        }
        for (auto& f : futures) {
          try {
            f.get();
            swap_completed.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            swap_failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    train::OnlineRetrainOptions ropt;
    ropt.epochs = 1;
    for (std::size_t v = 0; v < swap_publishes; ++v) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      auto refreshed = train::refresh_class_vectors(
          registry->latest(swap_tenant)->model(), kws->data.train, v + 1,
          ropt);
      registry->publish(swap_tenant, std::move(refreshed.model));
    }
    for (auto& t : submitters) t.join();
  }
  const std::uint64_t swap_submitted = 2 * swap_per_thread;
  const std::uint64_t swap_versions =
      registry->tenant(swap_tenant).version_count();
  std::printf("\nhot-swap drill: %llu requests across %zu publishes "
              "(now at %s): %llu completed, %llu dropped\n",
              static_cast<unsigned long long>(swap_submitted),
              swap_publishes,
              registry->latest(swap_tenant)->key().c_str(),
              static_cast<unsigned long long>(swap_completed.load()),
              static_cast<unsigned long long>(swap_failed.load()));

  // ---- Phase 4: drift + online adaptation ------------------------------
  // The gesture tenant's prototypes drift (new user / sensor mount); the
  // AdaptationDriver watches the labeled stream, detects the shift, and
  // republishes refreshed class vectors through the same hot-swap path.
  const std::string drift_tenant = tenant_name("GESTURE");
  const TenantRun* gesture = nullptr;
  for (const auto& run : runs) {
    if (run.tenant == drift_tenant) gesture = &run;
  }
  // The drifted stream stays full-size even in fast mode: it is cheap
  // (predict-only) traffic, and the refresh quality is bounded by how
  // many distinct drifted samples the reservoir can draw from.
  data::SyntheticSpec drifted_spec = gesture->bench->spec;
  drifted_spec.drift = 0.3;
  drifted_spec.drift_seed = 9;
  const data::SyntheticResult drifted = data::generate(drifted_spec);
  const double pre_drift = gesture->direct_accuracy;
  const double post_drift =
      runtime::make_backend(args.backend,
                            registry->latest(drift_tenant)->model())
          ->accuracy(drifted.test);

  // Refresh recipe (matches the univsa_cli zoo defaults): plastic class
  // vectors (inertia 1) retrained hard on a full reservoir of
  // post-drift traffic — the reservoir restarts when drift latches, so
  // min_refresh_samples counts drifted samples only.
  runtime::AdaptationOptions aopt;
  // Capacity must match min_refresh_samples: the refresh gates on
  // reservoir.size(), which is capped at capacity. Sizing both to one
  // full cycle of the stream means that wherever in pass 1 the latch
  // lands, the reservoir at refresh time holds the tail of pass 1 plus
  // the complementary head of pass 2 — every distinct drifted sample
  // exactly once, with no duplicate weighting.
  aopt.reservoir_capacity = drifted.train.size();
  aopt.min_refresh_samples = drifted.train.size();
  aopt.refresh_cooldown = 64;
  aopt.retrain.epochs = 10;
  aopt.retrain.inertia = 1;
  runtime::AdaptationDriver driver(registry, drift_tenant, aopt);
  runtime::SnapshotPtr current = registry->latest(drift_tenant);
  auto serving = runtime::make_backend(args.backend, current->model());
  vsa::Prediction prediction;
  // Freeze the detector's baseline on in-distribution traffic first —
  // it must describe the healthy model for drift to register as a drop.
  for (std::size_t i = 0; i < gesture->data.train.size(); ++i) {
    serving->predict_into(gesture->data.train.values(i), prediction);
    driver.observe(gesture->data.train.values(i),
                   gesture->data.train.label(i), prediction);
  }
  // Two passes of drifted traffic (a continuous stream): the first
  // latches the detector partway through, the rest fills the reservoir
  // until the refresh publishes; the tail serves on the new version.
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < drifted.train.size(); ++i) {
      if (const auto latest = registry->latest(drift_tenant);
          latest != current) {
        current = latest;
        serving = runtime::make_backend(args.backend, current->model());
      }
      serving->predict_into(drifted.train.values(i), prediction);
      driver.observe(drifted.train.values(i), drifted.train.label(i),
                     prediction);
    }
  }
  const double recovered =
      runtime::make_backend(args.backend,
                            registry->latest(drift_tenant)->model())
          ->accuracy(drifted.test);
  const double gap = pre_drift - post_drift;
  const double recovery =
      gap <= 0.0 ? 1.0 : (recovered - post_drift) / gap;
  // The >= 90% acceptance bar applies to the full-size drill; the fast
  // smoke's 2/3-size training split makes recovery noisier, so it gates
  // on a looser sanity floor.
  const double recovery_bar = fast ? 0.70 : 0.90;
  std::printf("\ndrift drill (%s, drift %.2f): %.4f -> %.4f after "
              "drift, %.4f after %llu refresh(es); recovery %.0f%% of "
              "the gap (target >= %.0f%%)\n",
              drift_tenant.c_str(), drifted_spec.drift, pre_drift,
              post_drift, recovered,
              static_cast<unsigned long long>(driver.refreshes()),
              100.0 * recovery, 100.0 * recovery_bar);

  // ---- Verdict + JSON records ------------------------------------------
  const bool zero_drops = swap_failed.load() == 0 &&
                          swap_completed.load() == swap_submitted;
  const bool recovered_enough = recovery >= recovery_bar;
  const bool ok = all_bit_exact && zero_drops && recovered_enough &&
                  driver.refreshes() > 0;

  const auto tenant_json = [&](const TenantRun& run, bool timing) {
    std::string s = "    {\"tenant\": \"" + run.tenant +
                    "\", \"benchmark\": \"" + run.bench->spec.name +
                    "\", \"direct_accuracy\": " +
                    report::fmt(run.direct_accuracy) +
                    ", \"served_accuracy\": " +
                    report::fmt(run.served_accuracy) +
                    ", \"bit_exact\": " +
                    (run.bit_exact ? "true" : "false");
    if (timing) {
      s += ", \"completed\": " + std::to_string(run.completed) +
           ", \"shed\": " + std::to_string(run.shed) +
           ", \"p99_us\": " + report::fmt(run.p99_us, 1);
    }
    return s + "}";
  };
  const auto write_record = [&](const std::string& path, bool timing) {
    std::ofstream json(path);
    json << "{\n  \"bench\": \"model_zoo\",\n"
         << "  \"mode\": \"" << (fast ? "fast" : "full") << "\",\n";
    if (timing) json << bench::json_runtime_fields(args);
    json << "  \"tenants\": [\n";
    for (std::size_t t = 0; t < runs.size(); ++t) {
      json << tenant_json(runs[t], timing) << (t + 1 < runs.size() ? ",\n"
                                                                   : "\n");
    }
    json << "  ],\n"
         << "  \"hot_swap\": {\"submitted\": " << swap_submitted
         << ", \"completed\": " << swap_completed.load()
         << ", \"dropped\": " << swap_failed.load()
         << ", \"publishes\": " << swap_publishes
         << ", \"versions\": " << swap_versions << "},\n"
         << "  \"drift\": {\"tenant\": \"" << drift_tenant
         << "\", \"drift\": " << report::fmt(drifted_spec.drift, 2)
         << ", \"pre_drift_accuracy\": " << report::fmt(pre_drift)
         << ", \"post_drift_accuracy\": " << report::fmt(post_drift)
         << ", \"recovered_accuracy\": " << report::fmt(recovered)
         << ", \"recovery_fraction\": " << report::fmt(recovery)
         << ", \"refreshes\": " << driver.refreshes()
         << ", \"drift_events\": " << driver.drift_events() << "},\n"
         << "  \"acceptance\": {\"bit_exact\": "
         << (all_bit_exact ? "true" : "false")
         << ", \"hot_swap_zero_drops\": " << (zero_drops ? "true" : "false")
         << ", \"drift_recovery_ok\": "
         << (recovered_enough ? "true" : "false") << ", \"ok\": "
         << (ok ? "true" : "false") << "}\n}\n";
  };
  write_record("BENCH_zoo.json", true);
  // Timing-free twin: every field is a deterministic function of the
  // seeds, so CI diffs two same-seed runs byte-for-byte.
  write_record("BENCH_zoo_acc.json", false);
  std::printf("\nWrote BENCH_zoo.json and BENCH_zoo_acc.json\n");
  if (!ok) {
    std::fprintf(stderr, "MODEL ZOO BENCH FAILED (see acceptance "
                         "record)\n");
    return 1;
  }
  std::printf("MODEL ZOO BENCH OK\n");
  return 0;
}
