// Multi-objective co-design (extension of the paper's Sec. V-A search):
// instead of the Eq. 7 scalarization, evolve the full accuracy-memory-
// resource Pareto front and print the trade-off surface a designer would
// pick a configuration from. Candidates are actually trained.
//
// Since ISSUE 7 this consumes the native NSGA-II mode of the scalable
// evolutionary_search (SearchOptions::pareto) — islands, memoization and
// parallel candidate evaluation included — rather than the serial
// reference pareto_search kept in pareto.h.
#include <cstdio>

#include "bench_common.h"
#include "univsa/report/table.h"
#include "univsa/search/evolutionary.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  data::SyntheticSpec spec = data::find_benchmark("BCI-III-V").spec;
  spec.train_count = args.fast ? 120 : 240;
  spec.test_count = args.fast ? 60 : 120;
  const data::SyntheticResult ds = data::generate(spec);

  vsa::ModelConfig task;
  task.W = spec.windows;
  task.L = spec.length;
  task.C = spec.classes;
  task.M = spec.levels;

  train::TrainOptions train_opts;
  train_opts.epochs = args.fast ? 3 : 6;
  const search::SeededAccuracyFn oracle =
      train::make_accuracy_oracle(ds.train, ds.test, train_opts);

  search::SearchSpace space;
  space.d_h = {2, 4, 8};
  space.o_min = 4;
  space.o_max = 64;
  search::SearchOptions options;
  options.population = args.fast ? 8 : 16;
  options.generations = args.fast ? 3 : 6;
  options.seed = 23;
  options.islands = 2;
  options.migration_interval = 2;
  options.emigrants = 1;
  options.pareto = true;

  std::puts("== Pareto co-design: accuracy vs Eq.5 memory vs Eq.6 "
            "resources (native NSGA-II search mode) ==");
  const search::SearchResult r =
      search::evolutionary_search(task, space, oracle, options);

  report::TextTable front({"config (D_H,D_L,D_K,O,Θ)", "accuracy",
                           "memory KB", "resource units"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& p : r.front) {
    const std::string cfg =
        "(" + std::to_string(p.config.D_H) + "," +
        std::to_string(p.config.D_L) + "," +
        std::to_string(p.config.D_K) + "," + std::to_string(p.config.O) +
        "," + std::to_string(p.config.Theta) + ")";
    front.add_row({cfg, report::fmt(p.accuracy),
                   report::fmt(p.memory_kb, 2),
                   report::fmt(p.resource_units, 0)});
    csv_rows.push_back({cfg, report::fmt(p.accuracy),
                        report::fmt(p.memory_kb, 2),
                        report::fmt(p.resource_units, 0)});
  }
  std::fputs(front.to_string().c_str(), stdout);
  std::printf("\n%zu Pareto-optimal configurations from %zu trainings "
              "(%zu islands)\n",
              r.front.size(), r.evaluations, options.islands);
  std::puts("Shape check: the front trades accuracy against hardware "
            "monotonically — Eq. 7 picks one point on this surface "
            "(λ1 = λ2 = 0.005 weighted).");

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"config", "accuracy", "memory_kb", "resources"},
                      csv_rows);
  }
  return 0;
}
