// Fig. 2 — the worked toy example: encoding a sample with N = 3
// features, M = 2 values, and measuring similarity against C = 2 class
// vectors, printed step by step (bind → bundle → sgn → dot-product).
#include <cstdio>

#include "bench_common.h"
#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"

int main(int argc, char** argv) {
  using namespace univsa;
  bench::parse_args(argc, argv);

  constexpr std::size_t kDim = 8;  // display-friendly vector dimension
  Rng rng(2024);

  // Feature position vectors F = {f1, f2, f3} and value vectors
  // V = {v1, v2} (Sec. II-A).
  std::vector<BitVec> f;
  std::vector<BitVec> v;
  for (int i = 0; i < 3; ++i) f.push_back(BitVec::random(kDim, rng));
  for (int i = 0; i < 2; ++i) v.push_back(BitVec::random(kDim, rng));

  const auto print_vec = [](const char* name, const BitVec& x) {
    std::printf("  %-10s [", name);
    for (std::size_t i = 0; i < x.size(); ++i) {
      std::printf("%s%+d", i ? " " : "", x.get(i));
    }
    std::puts("]");
  };

  std::puts("== Fig. 2: binary VSA toy example (N=3, M=2, C=2, D=8) ==");
  std::puts("Feature vectors F:");
  print_vec("f1", f[0]);
  print_vec("f2", f[1]);
  print_vec("f3", f[2]);
  std::puts("Value vectors V:");
  print_vec("v1", v[0]);
  print_vec("v2", v[1]);

  // Sample x = (value 1, value 2, value 1) — Eq. 1.
  const std::vector<std::size_t> x = {0, 1, 0};
  std::puts("\nEncoding x = (v1, v2, v1)  [Eq. 1: s = sgn(Σ f_i ∘ v_xi)]");
  BipolarAccumulator acc(kDim);
  for (std::size_t i = 0; i < 3; ++i) {
    const BitVec bound = f[i].bind(v[x[i]]);
    std::printf("bind f%zu ∘ v%zu:\n", i + 1, x[i] + 1);
    print_vec("", bound);
    acc.add(bound);
  }
  std::printf("  %-10s [", "sum");
  for (const auto s : acc.sums()) std::printf(" %+lld", s);
  std::puts("]");
  const BitVec s = acc.sign();
  print_vec("s = sgn", s);

  // Class vectors and similarity (Eq. 2, dot-product metric as in the
  // figure's lower half).
  std::puts("\nSimilarity against class vectors C (Eq. 2, dot product):");
  std::vector<BitVec> classes;
  classes.push_back(BitVec::random(kDim, rng));
  classes.push_back(BitVec::random(kDim, rng));
  print_vec("c1", classes[0]);
  print_vec("c2", classes[1]);
  const long long d1 = s.dot(classes[0]);
  const long long d2 = s.dot(classes[1]);
  std::printf("  dot(s, c1) = %+lld   dot(s, c2) = %+lld\n", d1, d2);
  std::printf("  predicted label: class %d\n", d1 >= d2 ? 1 : 2);

  // Cross-check the Hamming/dot equivalence the LDC training relies on.
  std::printf(
      "\nHamming/dot equivalence (Sec. II-C): dot = D - 2·hamming -> "
      "%+lld = %zu - 2*%zu\n",
      d1, kDim, s.hamming(classes[0]));
  return 0;
}
