// Table IV — UniVSA hardware performance on every task (simulated),
// printed next to the paper's measured values.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/accelerator.h"
#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  std::puts("== Table IV: UniVSA hardware performance (simulated vs paper) ==");
  report::TextTable table({"Benchmark", "Latency (ms)", "Power (W)",
                           "LUTs (x10^3)", "BRAMs", "DSPs",
                           "Throughput (x10^3)", "Energy (uJ/inf)"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const auto& b : bench::selected_benchmarks(args)) {
    const hw::HardwareReport r = hw::report_for(b.config);
    const report::PaperTable4Row* paper = nullptr;
    for (const auto& row : report::paper_table4()) {
      if (row.task == b.spec.name) paper = &row;
    }
    table.add_row(
        {b.spec.name,
         report::fmt_vs_paper(r.latency_ms, paper->latency_ms, 3),
         report::fmt_vs_paper(r.power_w, paper->power_w, 2),
         report::fmt_vs_paper(r.kiloluts, paper->kiloluts, 2),
         std::to_string(r.brams) + " (paper " +
             std::to_string(paper->brams) + ")",
         std::to_string(r.dsps) + " (paper " +
             std::to_string(paper->dsps) + ")",
         report::fmt_vs_paper(r.throughput_kilo, paper->throughput_kilo,
                              2),
         report::fmt(r.energy_per_inference_uj, 1)});
    csv_rows.push_back({b.spec.name, report::fmt(r.latency_ms, 4),
                        report::fmt(r.power_w, 3),
                        report::fmt(r.kiloluts, 2),
                        std::to_string(r.brams), std::to_string(r.dsps),
                        report::fmt(r.throughput_kilo, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nShape checks (paper Sec. V-C headlines):");
  bool all_ok = true;
  for (const auto& b : bench::selected_benchmarks(args)) {
    const hw::HardwareReport r = hw::report_for(b.config);
    const bool ok = r.power_w < 0.5 && r.latency_ms < 0.26 &&
                    r.throughput_kilo > 4.0 && r.dsps == 0;
    all_ok &= ok;
    std::printf("  %-10s power<0.5W %s, latency %.3f ms, throughput %.1fk/s\n",
                b.spec.name.c_str(), r.power_w < 0.5 ? "yes" : "NO",
                r.latency_ms, r.throughput_kilo);
  }
  std::printf("  all tasks within headline envelope: %s\n",
              all_ok ? "yes" : "NO");

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"benchmark", "latency_ms", "power_w", "kiloluts",
                       "brams", "dsps", "throughput_kilo"},
                      csv_rows);
  }
  return 0;
}
