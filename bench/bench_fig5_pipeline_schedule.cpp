// Fig. 5 (bottom-right) — the pipelined execution schedule for streaming
// inputs, with α = max{D_K, log2 D_H} per convolution iteration. Prints
// the per-stage cycle budget and an ASCII Gantt chart for each task.
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/pipeline.h"
#include "univsa/report/table.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  std::puts("== Fig. 5: execution scheduling of UniVSA ==");
  report::TextTable table({"Benchmark", "α", "DVP cyc", "BiConv cyc",
                           "Encode cyc", "Similar cyc",
                           "interval = BiConv?"});
  for (const auto& b : bench::selected_benchmarks(args)) {
    const hw::StageCycles s = hw::stage_cycles(b.config);
    table.add_row({b.spec.name,
                   std::to_string(hw::conv_iteration_cycles(b.config)),
                   std::to_string(s.dvp), std::to_string(s.biconv),
                   std::to_string(s.encoding),
                   std::to_string(s.similarity),
                   s.interval() == s.biconv ? "yes" : "NO"});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Stream three samples through the ISOLET pipeline, as in the figure.
  const auto& isolet = data::find_benchmark("ISOLET");
  const hw::StageCycles cycles = hw::stage_cycles(isolet.config);
  const hw::StreamSchedule schedule = hw::schedule_stream(
      cycles, 3, hw::TimingParams{}.controller_overhead);
  std::puts("\nStreaming schedule, 3 inputs (ISOLET config):");
  std::fputs(hw::render_gantt(schedule, 72).c_str(), stdout);

  std::printf(
      "\nsteady-state interval %zu cycles (= BiConv), single-input "
      "latency %zu cycles\n",
      schedule.steady_interval(),
      schedule.samples[0].stages.back().end);
  std::printf(
      "pipelining speedup over sequential execution at 3 samples: "
      "%.2fx\n",
      3.0 * static_cast<double>(schedule.samples[0].stages.back().end) /
          static_cast<double>(schedule.makespan));
  return 0;
}
