// Table III — hardware comparison of UniVSA against SVM/KNN/BNN/QNN/
// LookHD/LDC implementations.
//
// The non-UniVSA rows are other papers' silicon (cited constants, exactly
// as the paper treats them); the UniVSA row is produced by this repo's
// composed hardware models on the ISOLET configuration — the row the
// paper also uses ("closest input size to other binary VSA models").
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/accelerator.h"
#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  const auto& isolet = data::find_benchmark("ISOLET");
  const hw::HardwareReport r = hw::report_for(isolet.config);

  std::puts("== Table III: hardware comparison (UniVSA on ISOLET) ==");
  report::TextTable table({"Model", "FPGA Arch.", "Input / Classes",
                           "Freq (MHz)", "Memory (KB)", "Latency (ms)",
                           "Power (W)", "LUTs (x10^3)", "BRAMs", "DSPs"});
  for (const auto& row : report::paper_table3_citations()) {
    table.add_row({row.name, row.fpga, row.input_classes, row.freq_mhz,
                   row.memory_kb, row.latency_ms, row.power_w,
                   row.kiloluts, row.brams, row.dsps});
  }
  table.add_rule();
  table.add_row({"UniVSA (this sim)", "Zynq-ZU3EG (modelled)",
                 "(16,40) / 26", report::fmt(r.clock_mhz, 0),
                 report::fmt(r.memory_kb, 2), report::fmt(r.latency_ms, 3),
                 report::fmt(r.power_w, 2), report::fmt(r.kiloluts, 2),
                 std::to_string(r.brams), std::to_string(r.dsps)});
  table.add_row({"UniVSA (paper)", "Zynq-ZU3EG", "(16,40) / 26", "250",
                 "8.36", "0.044", "0.11", "7.92", "1", "0"});
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nShape checks (paper Sec. V-C ①/②):");
  std::printf(
      "  UniVSA LUTs %.2fk vs SVM 31.85k / KNN 135k / BNN 51.44k — "
      "0.1~0.5x resource usage: %s\n",
      r.kiloluts, r.kiloluts < 0.5 * 31.85 ? "yes" : "NO");
  std::printf(
      "  UniVSA power %.2f W under the 1.5 W BCI feasibility line "
      "[15]: %s\n",
      r.power_w, r.power_w < 1.5 ? "yes" : "NO");
  std::printf(
      "  UniVSA uses more resources than LDC (0.75k LUTs) but improves "
      "accuracy/memory (Table II): %s\n",
      r.kiloluts > 0.75 ? "yes (expected trade-off)" : "NO");

  if (!args.csv.empty()) {
    report::write_csv(
        args.csv,
        {"model", "memory_kb", "latency_ms", "power_w", "kiloluts",
         "brams", "dsps"},
        {{"univsa_sim", report::fmt(r.memory_kb, 2),
          report::fmt(r.latency_ms, 3), report::fmt(r.power_w, 2),
          report::fmt(r.kiloluts, 2), std::to_string(r.brams),
          std::to_string(r.dsps)}});
  }
  return 0;
}
