// Table II — accuracy and memory of LDA / KNN / SVM / LeHDC / LDC /
// UniVSA on the six benchmarks (synthetic stand-ins; see DESIGN.md §2).
//
// The paper's accuracy values come from the real public datasets, so the
// absolute numbers are not expected to match; the *shape* claims are:
//   - UniVSA beats LDC on every task,
//   - binary VSA memory is kilobyte-scale vs SVM/LeHDC's MB-scale,
//   - SVM is strong but enormous; LDA is small but weaker.
// Memory for the comparison methods follows the paper's accounting
// conventions (vsa::*_memory_kb).
#include <cstdio>

#include "bench_common.h"
#include "univsa/baselines/knn.h"
#include "univsa/baselines/lda.h"
#include "univsa/baselines/svm.h"
#include "univsa/report/paper_constants.h"
#include "univsa/report/table.h"
#include "univsa/train/ldc_trainer.h"
#include "univsa/train/lehdc_trainer.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

namespace {

using namespace univsa;

struct MethodResult {
  double accuracy = 0.0;
  double memory_kb = 0.0;
};

struct TaskResults {
  std::string task;
  MethodResult lda, knn, svm, lehdc, ldc, univsa;
};

TaskResults run_task(const data::Benchmark& b, const bench::Args& args) {
  const bool fast = args.fast;
  std::printf("[%s] generating data...\n", b.spec.name.c_str());
  const data::SyntheticResult ds =
      data::generate(bench::sized_spec(b, fast));
  const Tensor train_x = ds.train.to_float_matrix();
  const Tensor test_x = ds.test.to_float_matrix();
  const auto& train_y = ds.train.labels();
  const auto& test_y = ds.test.labels();
  const std::size_t n = ds.train.features();
  const std::size_t classes = ds.train.classes();

  TaskResults r;
  r.task = b.spec.name;

  std::printf("[%s] LDA...\n", b.spec.name.c_str());
  baselines::LdaClassifier lda;
  lda.fit(train_x, train_y, classes);
  r.lda = {lda.accuracy(test_x, test_y), vsa::lda_memory_kb(n, classes)};

  std::printf("[%s] KNN (K=5)...\n", b.spec.name.c_str());
  baselines::KnnClassifier knn(5);
  knn.fit(train_x, train_y, classes);
  r.knn = {knn.accuracy(test_x, test_y),
           static_cast<double>(knn.stored_bytes()) / 1000.0};

  std::printf("[%s] SVM (RBF)...\n", b.spec.name.c_str());
  baselines::SvmClassifier svm;
  svm.fit(train_x, train_y, classes);
  r.svm = {svm.accuracy(test_x, test_y),
           vsa::svm_memory_kb(n, svm.support_vector_count(),
                              svm.classifier_count())};

  std::printf("[%s] LeHDC (D=10000)...\n", b.spec.name.c_str());
  train::LehdcOptions lehdc_opts;
  lehdc_opts.dim = fast ? 2000 : 10000;
  lehdc_opts.epochs = fast ? 6 : 12;
  lehdc_opts.seed = 7;
  const auto lehdc = train::train_lehdc(ds.train, lehdc_opts);
  r.lehdc = {lehdc.model.accuracy(ds.test),
             vsa::lehdc_memory_kb(n, classes, b.config.M, 10000)};

  std::printf("[%s] LDC (D=128)...\n", b.spec.name.c_str());
  train::TrainOptions ldc_opts;
  ldc_opts.epochs = fast ? 8 : 25;
  ldc_opts.seed = 7;
  const auto ldc = train::train_ldc(ds.train, 128, ldc_opts);
  r.ldc = {ldc.model.accuracy(ds.test),
           vsa::ldc_memory_kb(n, classes, 128)};

  std::printf("[%s] UniVSA %s...\n", b.spec.name.c_str(),
              b.config.to_string().c_str());
  train::TrainOptions uni_opts;
  uni_opts.epochs = fast ? 8 : 25;
  uni_opts.seed = 7;
  const auto uni = train::train_univsa(b.config, ds.train, uni_opts);
  // Evaluate through the selected runtime backend (--backend; default is
  // the batched zero-allocation engine over the thread pool).
  r.univsa = {bench::backend_accuracy(args, uni.model, ds.test),
              vsa::memory_kb(b.config)};
  return r;
}

std::string cell(const MethodResult& m) {
  return report::fmt(m.accuracy, 4) + " (" + report::fmt(m.memory_kb, 2) +
         " KB)";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  std::puts("== Table II: model comparison — accuracy (memory KB) ==");
  std::puts("(synthetic stand-in datasets; paper values in brackets)\n");

  std::vector<TaskResults> results;
  for (const auto& b : bench::selected_benchmarks(args)) {
    results.push_back(run_task(b, args));
  }

  report::TextTable table(
      {"Task", "LDA", "KNN", "SVM", "LeHDC", "LDC", "UniVSA"});
  std::vector<std::vector<std::string>> csv_rows;
  TaskResults avg;
  for (const auto& r : results) {
    table.add_row({r.task, cell(r.lda), cell(r.knn), cell(r.svm),
                   cell(r.lehdc), cell(r.ldc), cell(r.univsa)});
    csv_rows.push_back({r.task, report::fmt(r.lda.accuracy),
                        report::fmt(r.knn.accuracy),
                        report::fmt(r.svm.accuracy),
                        report::fmt(r.lehdc.accuracy),
                        report::fmt(r.ldc.accuracy),
                        report::fmt(r.univsa.accuracy)});
    avg.lda.accuracy += r.lda.accuracy / results.size();
    avg.knn.accuracy += r.knn.accuracy / results.size();
    avg.svm.accuracy += r.svm.accuracy / results.size();
    avg.lehdc.accuracy += r.lehdc.accuracy / results.size();
    avg.ldc.accuracy += r.ldc.accuracy / results.size();
    avg.univsa.accuracy += r.univsa.accuracy / results.size();
    avg.lda.memory_kb += r.lda.memory_kb / results.size();
    avg.knn.memory_kb += r.knn.memory_kb / results.size();
    avg.svm.memory_kb += r.svm.memory_kb / results.size();
    avg.lehdc.memory_kb += r.lehdc.memory_kb / results.size();
    avg.ldc.memory_kb += r.ldc.memory_kb / results.size();
    avg.univsa.memory_kb += r.univsa.memory_kb / results.size();
  }
  table.add_rule();
  table.add_row({"average", cell(avg.lda), cell(avg.knn), cell(avg.svm),
                 cell(avg.lehdc), cell(avg.ldc), cell(avg.univsa)});
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nPaper Table II reference (real datasets):");
  report::TextTable paper(
      {"Task", "LDA", "KNN", "SVM", "LeHDC", "LDC", "UniVSA"});
  for (const auto& row : report::paper_table2()) {
    paper.add_row({row.task, report::fmt(row.lda_acc),
                   report::fmt(row.knn_acc), report::fmt(row.svm_acc),
                   report::fmt(row.lehdc_acc), report::fmt(row.ldc_acc),
                   report::fmt(row.univsa_acc)});
  }
  std::fputs(paper.to_string().c_str(), stdout);

  // Shape checks, mirrored from the paper's narrative.
  std::puts("\nShape checks:");
  std::size_t univsa_beats_ldc = 0;
  for (const auto& r : results) {
    if (r.univsa.accuracy >= r.ldc.accuracy) ++univsa_beats_ldc;
  }
  std::printf("  UniVSA >= LDC accuracy on %zu/%zu tasks\n",
              univsa_beats_ldc, results.size());
  std::printf("  UniVSA mean memory %.2f KB vs SVM %.2f KB (x%.0f)\n",
              avg.univsa.memory_kb, avg.svm.memory_kb,
              avg.svm.memory_kb / avg.univsa.memory_kb);
  std::printf("  UniVSA mean accuracy %.4f vs LDC %.4f\n",
              avg.univsa.accuracy, avg.ldc.accuracy);

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"task", "lda", "knn", "svm", "lehdc", "ldc",
                       "univsa"},
                      csv_rows);
  }
  return 0;
}
