// Microbenchmarks of the inference hot paths (google-benchmark):
// XNOR-popcount dot products, bind-bundle encoding, packed BiConv,
// end-to-end deployed inference, and the hardware functional simulator.
//
// A custom main() extends BENCHMARK_MAIN(): after the google-benchmark
// run (all its flags, --benchmark_filter included, keep working) it
// hand-times every univsa::simd primitive under every ISA the build and
// CPU support and writes per-primitive GiB/s + words/cycle rows to
// BENCH_micro.json, tagged with the build provenance block.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"
#include "univsa/common/simd.h"
#include "univsa/data/benchmarks.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/report/table.h"
#include "univsa/report/provenance.h"
#include "univsa/vsa/infer_engine.h"
#include "univsa/vsa/ldc_model.h"
#include "univsa/vsa/model.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define UNIVSA_BENCH_HAS_TSC 1
#endif

namespace {

using namespace univsa;

void BM_BitVecDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const BitVec a = BitVec::random(n, rng);
  const BitVec b = BitVec::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n));
}
BENCHMARK(BM_BitVecDot)->Arg(128)->Arg(1024)->Arg(10000);

void BM_BitVecMaskedDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const BitVec a = BitVec::random(n, rng);
  const BitVec b = BitVec::random(n, rng);
  const BitVec mask = BitVec::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.masked_dot(b, mask));
  }
}
BENCHMARK(BM_BitVecMaskedDot)->Arg(1024);

void BM_BindBundle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const BitVec f = BitVec::random(n, rng);
  const BitVec v = BitVec::random(n, rng);
  BipolarAccumulator acc(n);
  for (auto _ : state) {
    acc.add_bound(f, v);
    benchmark::DoNotOptimize(acc.sums().data());
  }
}
BENCHMARK(BM_BindBundle)->Arg(128)->Arg(1024);

/// Full Eq. 1 bundling of `rows` bound pairs: integer accumulator vs the
/// word-parallel bit-sliced counters used on the deployed hot path.
void BM_EncodeIntegerAccumulator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  std::vector<BitVec> fs;
  std::vector<BitVec> vs;
  for (std::size_t r = 0; r < rows; ++r) {
    fs.push_back(BitVec::random(n, rng));
    vs.push_back(BitVec::random(n, rng));
  }
  for (auto _ : state) {
    BipolarAccumulator acc(n);
    for (std::size_t r = 0; r < rows; ++r) acc.add_bound(fs[r], vs[r]);
    benchmark::DoNotOptimize(acc.sign());
  }
}
BENCHMARK(BM_EncodeIntegerAccumulator)
    ->Args({1024, 95})
    ->Args({640, 22});

void BM_EncodeBitSliced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  std::vector<BitVec> fs;
  std::vector<BitVec> vs;
  for (std::size_t r = 0; r < rows; ++r) {
    fs.push_back(BitVec::random(n, rng));
    vs.push_back(BitVec::random(n, rng));
  }
  for (auto _ : state) {
    BitSlicedAccumulator acc(n);
    for (std::size_t r = 0; r < rows; ++r) acc.add_bound(fs[r], vs[r]);
    benchmark::DoNotOptimize(acc.sign());
  }
}
BENCHMARK(BM_EncodeBitSliced)->Args({1024, 95})->Args({640, 22});

vsa::Model isolet_model() {
  Rng rng(4);
  return vsa::Model::random(data::find_benchmark("ISOLET").config, rng);
}

std::vector<std::uint16_t> isolet_sample() {
  Rng rng(5);
  const auto& c = data::find_benchmark("ISOLET").config;
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

void BM_DeployedProjectValues(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.project_values(values));
  }
}
BENCHMARK(BM_DeployedProjectValues);

void BM_DeployedConvolve(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto volume = m.project_values(isolet_sample());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.convolve(volume));
  }
}
BENCHMARK(BM_DeployedConvolve);

void BM_DeployedEncode(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto conv = m.convolve(m.project_values(isolet_sample()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode_channels(conv));
  }
}
BENCHMARK(BM_DeployedEncode);

void BM_DeployedPredict(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(values));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeployedPredict);

void BM_ReferencePredict(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict_reference(values));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferencePredict);

void BM_EnginePredict(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  vsa::InferEngine engine(m);
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.predict(values).label);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePredict);

void BM_EngineConvolve(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  vsa::InferScratch scratch(m.config());
  const auto volume = m.project_values(isolet_sample());
  m.convolve_into(volume, scratch);  // warm: packs kernels + validity
  for (auto _ : state) {
    m.convolve_into(volume, scratch);
    benchmark::DoNotOptimize(scratch.conv_words.data());
  }
}
BENCHMARK(BM_EngineConvolve);

void BM_EngineEncode(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  vsa::InferScratch scratch(m.config());
  m.convolve_into(m.project_values(isolet_sample()), scratch);
  for (auto _ : state) {
    m.encode_into(scratch);
    benchmark::DoNotOptimize(scratch.sample.words().data());
  }
}
BENCHMARK(BM_EngineEncode);

void BM_EnginePredictBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const vsa::Model m = isolet_model();
  vsa::InferEngine engine(m);
  Rng rng(7);
  const auto& c = m.config();
  std::vector<std::vector<std::uint16_t>> samples(batch);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  std::vector<vsa::Prediction> out;
  for (auto _ : state) {
    engine.predict_batch(samples, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(batch));
}
BENCHMARK(BM_EnginePredictBatch)->Arg(16)->Arg(256);

void BM_LdcPredict(benchmark::State& state) {
  Rng rng(6);
  const vsa::LdcModel m = vsa::LdcModel::random(16, 40, 256, 26, 128, rng);
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(values));
  }
}
BENCHMARK(BM_LdcPredict);

void BM_FunctionalSimRun(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const hw::Accelerator accel(m);
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run(values));
  }
}
BENCHMARK(BM_FunctionalSimRun);

// --- Per-ISA SIMD primitive micro section --------------------------------
//
// Registered dynamically (availability is a runtime property of the CPU),
// so `--benchmark_filter=BM_Simd` sweeps every compiled-in ISA variant
// side by side. The same loops are re-timed by hand below the
// google-benchmark run to produce the BENCH_micro.json rows.

inline std::uint64_t cycle_counter() {
#if defined(UNIVSA_BENCH_HAS_TSC)
  return __rdtsc();
#else
  return 0;  // words/cycle reported as 0 off x86; GiB/s still valid
#endif
}

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next_u64();
  return words;
}

// Reduction primitives stream kReductionWords-word operands (128 KiB per
// stream — L2-resident, so this measures the kernel, not DRAM). The
// sweep uses a kernel matrix of the same footprint with the BiConv
// shape: few words per patch, many kernels.
constexpr std::size_t kReductionWords = 16384;
constexpr std::size_t kSweepWords = 4;
constexpr std::size_t kSweepKernels = 4096;

struct SimdBuffers {
  std::vector<std::uint64_t> a, b, m, kernels_t;
  std::vector<std::uint32_t> acc;
  SimdBuffers() {
    Rng rng(0x5EEDu);
    a = random_words(rng, kReductionWords);
    b = random_words(rng, kReductionWords);
    m = random_words(rng, kReductionWords);
    kernels_t = random_words(rng, kSweepWords * kSweepKernels);
    acc.resize(kSweepKernels);
  }
};

SimdBuffers& simd_buffers() {
  static SimdBuffers buffers;
  return buffers;
}

struct SimdPrimitive {
  const char* name;
  std::size_t bytes_per_call;   // streamed bytes (for GiB/s)
  std::size_t words_per_call;   // 64-bit word-ops (for words/cycle)
  std::uint64_t (*run)(const simd::Kernels&);
};

const SimdPrimitive kSimdPrimitives[] = {
    {"bulk_popcount", kReductionWords * 8, kReductionWords,
     [](const simd::Kernels& k) {
       const SimdBuffers& s = simd_buffers();
       return static_cast<std::uint64_t>(
           k.bulk_popcount(s.a.data(), kReductionWords));
     }},
    {"xor_popcount", kReductionWords * 16, kReductionWords,
     [](const simd::Kernels& k) {
       const SimdBuffers& s = simd_buffers();
       return static_cast<std::uint64_t>(
           k.xor_popcount(s.a.data(), s.b.data(), kReductionWords));
     }},
    {"xnor_popcount", kReductionWords * 16, kReductionWords,
     [](const simd::Kernels& k) {
       const SimdBuffers& s = simd_buffers();
       return static_cast<std::uint64_t>(
           k.xnor_popcount(s.a.data(), s.b.data(), kReductionWords));
     }},
    {"masked_xnor_popcount", kReductionWords * 24, kReductionWords,
     [](const simd::Kernels& k) {
       const SimdBuffers& s = simd_buffers();
       return static_cast<std::uint64_t>(k.masked_xnor_popcount(
           s.a.data(), s.b.data(), s.m.data(), kReductionWords));
     }},
    {"masked_xnor_popcount_sweep",
     kSweepWords * kSweepKernels * 8 + kSweepKernels * 4,
     kSweepWords * kSweepKernels,
     [](const simd::Kernels& k) {
       SimdBuffers& s = simd_buffers();
       k.masked_xnor_popcount_sweep(s.a.data(), s.m.data(),
                                    s.kernels_t.data(), kSweepWords,
                                    kSweepKernels, s.acc.data());
       return static_cast<std::uint64_t>(s.acc[kSweepKernels - 1]);
     }},
};

void register_simd_benchmarks() {
  for (const simd::Isa isa : simd::compiled_isas()) {
    if (!simd::isa_available(isa)) continue;
    const simd::Kernels* k = &simd::kernels_for(isa);
    for (const SimdPrimitive& prim : kSimdPrimitives) {
      const std::string name = std::string("BM_Simd/") + prim.name + "<" +
                               simd::to_string(isa) + ">";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [k, &prim](benchmark::State& state) {
            std::uint64_t sink = 0;
            for (auto _ : state) {
              sink += prim.run(*k);
              benchmark::DoNotOptimize(sink);
            }
            state.SetBytesProcessed(
                static_cast<long>(state.iterations()) *
                static_cast<long>(prim.bytes_per_call));
            state.counters["words_per_s"] = benchmark::Counter(
                static_cast<double>(state.iterations()) *
                    static_cast<double>(prim.words_per_call),
                benchmark::Counter::kIsRate);
          });
    }
  }
}

struct SimdRow {
  std::string primitive;
  std::string isa;
  double gib_per_s = 0.0;
  double words_per_cycle = 0.0;
};

// Hand-timed pass behind BENCH_micro.json: ~50 ms per (primitive, ISA)
// cell, GiB/s from the wall clock, words/cycle from the TSC (0 off x86).
std::vector<SimdRow> time_simd_rows() {
  using clock = std::chrono::steady_clock;
  std::vector<SimdRow> rows;
  volatile std::uint64_t sink = 0;
  for (const simd::Isa isa : simd::compiled_isas()) {
    if (!simd::isa_available(isa)) continue;
    const simd::Kernels& k = simd::kernels_for(isa);
    for (const SimdPrimitive& prim : kSimdPrimitives) {
      sink += prim.run(k);  // warm
      std::uint64_t calls = 0;
      const auto t0 = clock::now();
      const std::uint64_t c0 = cycle_counter();
      double elapsed_s = 0.0;
      do {
        sink += prim.run(k);
        ++calls;
        elapsed_s = std::chrono::duration<double>(clock::now() - t0).count();
      } while (elapsed_s < 0.05);
      const std::uint64_t cycles = cycle_counter() - c0;
      SimdRow row;
      row.primitive = prim.name;
      row.isa = simd::to_string(isa);
      row.gib_per_s = static_cast<double>(calls) *
                      static_cast<double>(prim.bytes_per_call) /
                      (elapsed_s * 1024.0 * 1024.0 * 1024.0);
      row.words_per_cycle =
          cycles == 0 ? 0.0
                      : static_cast<double>(calls) *
                            static_cast<double>(prim.words_per_call) /
                            static_cast<double>(cycles);
      rows.push_back(row);
    }
  }
  (void)sink;
  return rows;
}

void write_bench_micro_json(const std::vector<SimdRow>& rows) {
  std::ofstream json("BENCH_micro.json");
  json << "{\n"
       << "  \"task\": \"micro_kernels\",\n"
       << "  \"reduction_words\": " << kReductionWords << ",\n"
       << "  \"sweep_words\": " << kSweepWords << ",\n"
       << "  \"sweep_kernels\": " << kSweepKernels << ",\n"
       << univsa::report::provenance_json_fields()
       << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json << "    {\"primitive\": \"" << rows[i].primitive << "\", \"isa\": \""
         << rows[i].isa << "\", \"gib_per_s\": "
         << report::fmt(rows[i].gib_per_s, 3) << ", \"words_per_cycle\": "
         << report::fmt(rows[i].words_per_cycle, 3) << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n"
       << "}\n";
}

}  // namespace

// BENCHMARK_MAIN() expanded so the per-ISA SIMD benchmarks can be
// registered at runtime and the BENCH_micro.json pass can run after the
// google-benchmark section. All google-benchmark flags keep working.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_simd_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::vector<SimdRow> rows = time_simd_rows();
  univsa::report::TextTable table(
      {"primitive", "isa", "GiB/s", "words/cycle"});
  for (const SimdRow& row : rows) {
    table.add_row({row.primitive, row.isa,
                   univsa::report::fmt(row.gib_per_s, 2),
                   univsa::report::fmt(row.words_per_cycle, 2)});
  }
  std::printf("\n== SIMD primitive throughput (active isa: %s) ==\n",
              univsa::simd::to_string(univsa::simd::active_isa()));
  std::fputs(table.to_string().c_str(), stdout);
  write_bench_micro_json(rows);
  std::puts("\nWrote BENCH_micro.json");
  return 0;
}
