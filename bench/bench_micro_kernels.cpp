// Microbenchmarks of the inference hot paths (google-benchmark):
// XNOR-popcount dot products, bind-bundle encoding, packed BiConv,
// end-to-end deployed inference, and the hardware functional simulator.
#include <benchmark/benchmark.h>

#include "univsa/common/bitvec.h"
#include "univsa/common/rng.h"
#include "univsa/data/benchmarks.h"
#include "univsa/hw/functional_sim.h"
#include "univsa/vsa/infer_engine.h"
#include "univsa/vsa/ldc_model.h"
#include "univsa/vsa/model.h"

namespace {

using namespace univsa;

void BM_BitVecDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const BitVec a = BitVec::random(n, rng);
  const BitVec b = BitVec::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n));
}
BENCHMARK(BM_BitVecDot)->Arg(128)->Arg(1024)->Arg(10000);

void BM_BitVecMaskedDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const BitVec a = BitVec::random(n, rng);
  const BitVec b = BitVec::random(n, rng);
  const BitVec mask = BitVec::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.masked_dot(b, mask));
  }
}
BENCHMARK(BM_BitVecMaskedDot)->Arg(1024);

void BM_BindBundle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const BitVec f = BitVec::random(n, rng);
  const BitVec v = BitVec::random(n, rng);
  BipolarAccumulator acc(n);
  for (auto _ : state) {
    acc.add_bound(f, v);
    benchmark::DoNotOptimize(acc.sums().data());
  }
}
BENCHMARK(BM_BindBundle)->Arg(128)->Arg(1024);

/// Full Eq. 1 bundling of `rows` bound pairs: integer accumulator vs the
/// word-parallel bit-sliced counters used on the deployed hot path.
void BM_EncodeIntegerAccumulator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  std::vector<BitVec> fs;
  std::vector<BitVec> vs;
  for (std::size_t r = 0; r < rows; ++r) {
    fs.push_back(BitVec::random(n, rng));
    vs.push_back(BitVec::random(n, rng));
  }
  for (auto _ : state) {
    BipolarAccumulator acc(n);
    for (std::size_t r = 0; r < rows; ++r) acc.add_bound(fs[r], vs[r]);
    benchmark::DoNotOptimize(acc.sign());
  }
}
BENCHMARK(BM_EncodeIntegerAccumulator)
    ->Args({1024, 95})
    ->Args({640, 22});

void BM_EncodeBitSliced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  std::vector<BitVec> fs;
  std::vector<BitVec> vs;
  for (std::size_t r = 0; r < rows; ++r) {
    fs.push_back(BitVec::random(n, rng));
    vs.push_back(BitVec::random(n, rng));
  }
  for (auto _ : state) {
    BitSlicedAccumulator acc(n);
    for (std::size_t r = 0; r < rows; ++r) acc.add_bound(fs[r], vs[r]);
    benchmark::DoNotOptimize(acc.sign());
  }
}
BENCHMARK(BM_EncodeBitSliced)->Args({1024, 95})->Args({640, 22});

vsa::Model isolet_model() {
  Rng rng(4);
  return vsa::Model::random(data::find_benchmark("ISOLET").config, rng);
}

std::vector<std::uint16_t> isolet_sample() {
  Rng rng(5);
  const auto& c = data::find_benchmark("ISOLET").config;
  std::vector<std::uint16_t> values(c.features());
  for (auto& v : values) {
    v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  return values;
}

void BM_DeployedProjectValues(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.project_values(values));
  }
}
BENCHMARK(BM_DeployedProjectValues);

void BM_DeployedConvolve(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto volume = m.project_values(isolet_sample());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.convolve(volume));
  }
}
BENCHMARK(BM_DeployedConvolve);

void BM_DeployedEncode(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto conv = m.convolve(m.project_values(isolet_sample()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode_channels(conv));
  }
}
BENCHMARK(BM_DeployedEncode);

void BM_DeployedPredict(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(values));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeployedPredict);

void BM_ReferencePredict(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict_reference(values));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferencePredict);

void BM_EnginePredict(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  vsa::InferEngine engine(m);
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.predict(values).label);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePredict);

void BM_EngineConvolve(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  vsa::InferScratch scratch(m.config());
  const auto volume = m.project_values(isolet_sample());
  m.convolve_into(volume, scratch);  // warm: packs kernels + validity
  for (auto _ : state) {
    m.convolve_into(volume, scratch);
    benchmark::DoNotOptimize(scratch.conv_words.data());
  }
}
BENCHMARK(BM_EngineConvolve);

void BM_EngineEncode(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  vsa::InferScratch scratch(m.config());
  m.convolve_into(m.project_values(isolet_sample()), scratch);
  for (auto _ : state) {
    m.encode_into(scratch);
    benchmark::DoNotOptimize(scratch.sample.words().data());
  }
}
BENCHMARK(BM_EngineEncode);

void BM_EnginePredictBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const vsa::Model m = isolet_model();
  vsa::InferEngine engine(m);
  Rng rng(7);
  const auto& c = m.config();
  std::vector<std::vector<std::uint16_t>> samples(batch);
  for (auto& s : samples) {
    s.resize(c.features());
    for (auto& v : s) v = static_cast<std::uint16_t>(rng.uniform_index(c.M));
  }
  std::vector<vsa::Prediction> out;
  for (auto _ : state) {
    engine.predict_batch(samples, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(batch));
}
BENCHMARK(BM_EnginePredictBatch)->Arg(16)->Arg(256);

void BM_LdcPredict(benchmark::State& state) {
  Rng rng(6);
  const vsa::LdcModel m = vsa::LdcModel::random(16, 40, 256, 26, 128, rng);
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(values));
  }
}
BENCHMARK(BM_LdcPredict);

void BM_FunctionalSimRun(benchmark::State& state) {
  const vsa::Model m = isolet_model();
  const hw::Accelerator accel(m);
  const auto values = isolet_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run(values));
  }
}
BENCHMARK(BM_FunctionalSimRun);

}  // namespace

BENCHMARK_MAIN();
