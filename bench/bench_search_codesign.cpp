// Sec. V-A — the evolutionary configuration search with the Eq. 7
// hardware penalty (λ1 = λ2 = 0.005), run end-to-end: each candidate
// configuration is trained briefly on a downscaled task and scored as
// obj = val-accuracy − L_HW. Demonstrates the co-design loop that
// produced Table I's configurations.
#include <cstdio>
#include <mutex>

#include "bench_common.h"
#include "univsa/report/table.h"
#include "univsa/search/evolutionary.h"
#include "univsa/telemetry/telemetry.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  // Downscaled HAR-like task keeps per-candidate training cheap.
  data::SyntheticSpec spec = data::find_benchmark("HAR").spec;
  spec.windows = 8;
  spec.length = 12;
  spec.train_count = args.fast ? 120 : 240;
  spec.test_count = args.fast ? 60 : 120;
  const data::SyntheticResult ds = data::generate(spec);

  vsa::ModelConfig task;
  task.W = spec.windows;
  task.L = spec.length;
  task.C = spec.classes;
  task.M = spec.levels;

  // Candidates are trained concurrently (SearchOptions::parallel), so the
  // progress counter and stdout need a lock; the per-genome seed from the
  // search keeps each training run reproducible regardless of schedule.
  std::mutex log_mutex;
  std::size_t trained = 0;
  const search::SeededAccuracyFn oracle = [&](const vsa::ModelConfig& c,
                                              std::uint64_t seed) {
    train::TrainOptions opts;
    opts.epochs = args.fast ? 3 : 6;
    opts.seed = seed;
    const auto result = train::train_univsa(c, ds.train, opts);
    const double acc = result.model.accuracy(ds.test);
    {
      const std::lock_guard<std::mutex> lock(log_mutex);
      ++trained;
      std::printf("  candidate %2zu %s -> acc %.4f, penalty %.4f\n",
                  trained, c.to_string().c_str(), acc,
                  vsa::hardware_penalty(c));
    }
    return acc;
  };

  search::SearchSpace space;
  space.d_h = {2, 4, 8};
  space.d_l = {1, 2, 4};
  space.o_min = 4;
  space.o_max = 32;
  search::SearchOptions options;
  options.population = args.fast ? 6 : 10;
  options.generations = args.fast ? 3 : 5;
  options.elite = 2;
  options.seed = 11;

  std::puts("== Sec. V-A: evolutionary co-design search (Eq. 7 penalty) ==");
  const search::SearchResult r =
      search::evolutionary_search(task, space, oracle, options);

  std::puts("\nGeneration history:");
  report::TextTable hist({"generation", "best objective", "mean objective"});
  for (std::size_t g = 0; g < r.history.size(); ++g) {
    hist.add_row({std::to_string(g), report::fmt(r.history[g].best_objective),
                  report::fmt(r.history[g].mean_objective)});
  }
  std::fputs(hist.to_string().c_str(), stdout);

  std::printf("\nbest configuration: %s\n", r.best_config.to_string().c_str());
  std::printf("  accuracy %.4f, penalty %.4f, objective %.4f\n",
              r.best_accuracy, vsa::hardware_penalty(r.best_config),
              r.best_objective);
  std::printf("  memory %.2f KB, Eq.6 resource units %zu\n",
              vsa::memory_kb(r.best_config),
              vsa::resource_units(r.best_config));
  std::printf("  oracle calls: %zu (memoized GA)\n", r.evaluations);
  std::puts(
      "\nShape check: the penalty steers the search away from oversized "
      "O/D_H configurations while retaining accuracy — the mechanism "
      "that produced Table I's compact configs.");
  // The search.* metrics only exist once a search has run; this snapshot
  // is what the docs-check CI job scrapes to verify docs/METRICS.md.
  if (telemetry::write_json_file("metrics_search.json")) {
    std::puts("Wrote metrics_search.json");
  }
  return 0;
}
