// Sec. V-A — the evolutionary configuration search with the Eq. 7
// hardware penalty (λ1 = λ2 = 0.005), run end-to-end and at scale:
//
//  1. Legacy contract: the single-population parallel GA reproduces the
//     serial trajectory bit-for-bit for the PR 2 regression seeds
//     (7/13/99) — a violation is a bench failure, not a footnote.
//  2. Scaled search: island-model GA + surrogate pre-screening over the
//     same candidate-training oracle, reporting the screen rate and the
//     best-objective trajectory.
//  3. Candidate-evaluation scaling: the same seeded scaled search run
//     with a 1-thread pool and with the hardware-wide pool;
//     ga_parallel_scaling = serial wall / parallel wall. This is the
//     number ISSUE 7 pins at ≥ 0.7 · cores (the work-stealing pool lets
//     P candidates train concurrently on shared workers, where the old
//     pool serialized each candidate's nested training).
//
// Emits BENCH_search.json (provenance + scaling + throughput record) and
// metrics_search.json (the telemetry snapshot docs-check scrapes).
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "univsa/report/table.h"
#include "univsa/search/evolutionary.h"
#include "univsa/telemetry/telemetry.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

namespace {

bool identical_trajectories(const univsa::search::SearchResult& a,
                            const univsa::search::SearchResult& b) {
  bool same = a.best_config == b.best_config &&
              a.best_objective == b.best_objective &&
              a.best_accuracy == b.best_accuracy &&
              a.evaluations == b.evaluations &&
              a.history.size() == b.history.size();
  for (std::size_t g = 0; same && g < a.history.size(); ++g) {
    same = a.history[g].best_objective == b.history[g].best_objective &&
           a.history[g].mean_objective == b.history[g].mean_objective;
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  // Downscaled HAR-like task keeps per-candidate training cheap.
  data::SyntheticSpec spec = data::find_benchmark("HAR").spec;
  spec.windows = 8;
  spec.length = 12;
  spec.train_count = args.fast ? 120 : 240;
  spec.test_count = args.fast ? 60 : 120;
  const data::SyntheticResult ds = data::generate(spec);

  vsa::ModelConfig task;
  task.W = spec.windows;
  task.L = spec.length;
  task.C = spec.classes;
  task.M = spec.levels;

  // Full-fidelity oracle and truncated-epoch surrogate: the per-genome
  // seed handed in by the search keeps every candidate training run
  // reproducible regardless of schedule or thread count.
  train::TrainOptions train_opts;
  train_opts.epochs = args.fast ? 3 : 6;
  const search::SeededAccuracyFn oracle =
      train::make_accuracy_oracle(ds.train, ds.test, train_opts);
  const search::SeededAccuracyFn proxy =
      train::make_surrogate_oracle(ds.train, ds.test, train_opts, 3);

  search::SearchSpace space;
  space.d_h = {2, 4, 8};
  space.d_l = {1, 2, 4};
  space.o_min = 4;
  space.o_max = 32;

  const std::size_t hw_cores =
      std::max(1u, std::thread::hardware_concurrency());
  const std::size_t pool_threads =
      args.threads > 0 ? args.threads : hw_cores;

  // ---- 1. Legacy determinism gate (PR 2 regression seeds) -------------
  std::puts("== Sec. V-A: evolutionary co-design search (Eq. 7 penalty) ==");
  std::puts("\n[1/3] legacy single-population mode, parallel == serial:");
  bool legacy_ok = true;
  for (const std::uint64_t seed : {7ull, 13ull, 99ull}) {
    search::SearchOptions legacy;
    legacy.population = args.fast ? 6 : 8;
    legacy.generations = args.fast ? 2 : 3;
    legacy.elite = 2;
    legacy.seed = seed;
    legacy.parallel = false;
    const search::SearchResult serial =
        search::evolutionary_search(task, space, oracle, legacy);
    legacy.parallel = true;
    const search::SearchResult parallel =
        search::evolutionary_search(task, space, oracle, legacy);
    const bool same = identical_trajectories(serial, parallel);
    legacy_ok = legacy_ok && same;
    std::printf("  seed %2llu: %s (%zu oracle calls, best obj %.4f)\n",
                static_cast<unsigned long long>(seed),
                same ? "bit-identical" : "DIVERGED — DETERMINISM BUG",
                parallel.evaluations, parallel.best_objective);
  }

  // ---- 2+3. Scaled search and candidate-evaluation scaling ------------
  search::SearchOptions scaled;
  scaled.population = args.fast ? 6 : 10;
  scaled.generations = args.fast ? 3 : 5;
  scaled.elite = 2;
  scaled.seed = 11;
  scaled.islands = args.fast ? 2 : 4;
  scaled.migration_interval = 2;
  scaled.emigrants = 1;
  scaled.surrogate = proxy;
  scaled.surrogate_keep = 0.5;

  std::printf("\n[2/3] island GA + surrogate screen, %zu-thread pool "
              "(threads=1 reference first):\n",
              pool_threads);
  set_global_pool_threads(1);
  const std::uint64_t t1_0 = telemetry::now_ns();
  const search::SearchResult serial_r =
      search::evolutionary_search(task, space, oracle, scaled);
  const double serial_s =
      static_cast<double>(telemetry::now_ns() - t1_0) * 1e-9;

  set_global_pool_threads(pool_threads);
  const std::uint64_t tn_0 = telemetry::now_ns();
  const search::SearchResult r =
      search::evolutionary_search(task, space, oracle, scaled);
  const double parallel_s =
      static_cast<double>(telemetry::now_ns() - tn_0) * 1e-9;
  set_global_pool_threads(args.threads);

  const bool scaled_ok = identical_trajectories(serial_r, r);
  legacy_ok = legacy_ok && scaled_ok;
  std::printf("  threads=1 vs threads=%zu trajectories: %s\n",
              pool_threads,
              scaled_ok ? "bit-identical" : "DIVERGED — DETERMINISM BUG");

  std::puts("\nGeneration history (best/mean across islands):");
  report::TextTable hist({"generation", "best objective", "mean objective"});
  for (std::size_t g = 0; g < r.history.size(); ++g) {
    hist.add_row({std::to_string(g), report::fmt(r.history[g].best_objective),
                  report::fmt(r.history[g].mean_objective)});
  }
  std::fputs(hist.to_string().c_str(), stdout);

  // Unique configurations explored: with the screen on, every fresh
  // genome is proxy-scored and the promoted share is trained in full.
  const std::size_t configs_explored =
      std::max(r.evaluations, r.surrogate_evaluations);
  const double screen_rate =
      r.surrogate_evaluations > 0
          ? static_cast<double>(r.surrogate_promoted) /
                static_cast<double>(r.surrogate_evaluations)
          : 1.0;
  const double scaling = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double configs_per_hour =
      parallel_s > 0.0 ? configs_explored * 3600.0 / parallel_s : 0.0;
  const double configs_per_hour_serial =
      serial_s > 0.0 ? configs_explored * 3600.0 / serial_s : 0.0;

  std::printf("\nbest configuration: %s\n", r.best_config.to_string().c_str());
  std::printf("  accuracy %.4f, penalty %.4f, objective %.4f\n",
              r.best_accuracy, vsa::hardware_penalty(r.best_config),
              r.best_objective);
  std::printf("  memory %.2f KB, Eq.6 resource units %zu\n",
              vsa::memory_kb(r.best_config),
              vsa::resource_units(r.best_config));
  std::printf("  islands %zu, oracle calls %zu, surrogate screens %zu "
              "(%.0f%% promoted)\n",
              scaled.islands, r.evaluations, r.surrogate_evaluations,
              100.0 * screen_rate);

  std::printf("\n[3/3] candidate-evaluation scaling (%zu cores):\n",
              hw_cores);
  std::printf("  threads=1: %.2f s (%.0f configs/hour)\n", serial_s,
              configs_per_hour_serial);
  std::printf("  threads=%zu: %.2f s (%.0f configs/hour)\n", pool_threads,
              parallel_s, configs_per_hour);
  std::printf("  ga_parallel_scaling: %.3f (target >= %.2f)\n", scaling,
              0.7 * static_cast<double>(pool_threads));
  std::puts(
      "\nShape check: the penalty steers the search away from oversized "
      "O/D_H configurations while retaining accuracy — the mechanism "
      "that produced Table I's compact configs; islands + screening "
      "multiply the configurations explored per wall-hour.");

  {
    std::ofstream json("BENCH_search.json");
    json << "{\n" << bench::json_runtime_fields(args)
         << "  \"task\": \"" << spec.name << "\",\n"
         << "  \"islands\": " << scaled.islands << ",\n"
         << "  \"population\": " << scaled.population << ",\n"
         << "  \"generations\": " << scaled.generations << ",\n"
         << "  \"surrogate_keep\": " << report::fmt(scaled.surrogate_keep, 2)
         << ",\n"
         << "  \"oracle_evaluations\": " << r.evaluations << ",\n"
         << "  \"surrogate_evaluations\": " << r.surrogate_evaluations
         << ",\n"
         << "  \"surrogate_screen_rate\": " << report::fmt(screen_rate, 3)
         << ",\n"
         << "  \"hardware_cores\": " << hw_cores << ",\n"
         << "  \"eval_pool_threads\": " << pool_threads << ",\n"
         << "  \"eval_wall_s_threads1\": " << report::fmt(serial_s, 3)
         << ",\n"
         << "  \"eval_wall_s_pool\": " << report::fmt(parallel_s, 3)
         << ",\n"
         << "  \"ga_parallel_scaling\": " << report::fmt(scaling, 3)
         << ",\n"
         << "  \"ga_scaling_target\": "
         << report::fmt(0.7 * static_cast<double>(pool_threads), 2) << ",\n"
         << "  \"configs_per_hour_serial\": "
         << report::fmt(configs_per_hour_serial, 1) << ",\n"
         << "  \"configs_per_hour\": " << report::fmt(configs_per_hour, 1)
         << ",\n"
         << "  \"best_config\": \"" << r.best_config.to_string() << "\",\n"
         << "  \"best_objective\": " << report::fmt(r.best_objective, 4)
         << ",\n"
         << "  \"best_objective_trajectory\": [";
    for (std::size_t g = 0; g < r.history.size(); ++g) {
      json << (g ? ", " : "")
           << report::fmt(r.history[g].best_objective, 4);
    }
    json << "],\n"
         << "  \"legacy_matches_serial\": "
         << (legacy_ok ? "true" : "false") << "\n"
         << "}\n";
  }
  std::puts("Wrote BENCH_search.json");

  // The search.* metrics only exist once a search has run; this snapshot
  // is what the docs-check CI job scrapes to verify docs/METRICS.md.
  if (telemetry::write_json_file("metrics_search.json")) {
    std::puts("Wrote metrics_search.json");
  }
  return legacy_ok ? 0 : 1;
}
