// Shared helpers for the table/figure reproduction binaries.
//
// Every bench accepts:
//   --fast          smaller datasets / fewer epochs (CI-scale smoke run)
//   --task NAME     restrict to one Table I benchmark
//   --csv PATH      also emit the table as CSV
//   --threads N     size the global thread pool (0 = hardware default)
//   --backend NAME  runtime inference backend (default "packed"; see
//                   univsa/runtime/registry.h for the registered names)
// and prints a paper-vs-measured table to stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <functional>

#include "univsa/common/thread_pool.h"
#include "univsa/data/benchmarks.h"
#include "univsa/runtime/registry.h"
#include "univsa/report/provenance.h"
#include "univsa/telemetry/metrics.h"

namespace univsa::bench {

struct Args {
  bool fast = false;
  std::string task;        // empty = all
  std::string csv;         // empty = none
  std::size_t threads = 0; // 0 = hardware default
  std::string backend = runtime::default_backend();
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      args.fast = true;
    } else if (std::strcmp(argv[i], "--task") == 0 && i + 1 < argc) {
      args.task = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.csv = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      args.backend = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--fast] [--task NAME] [--csv PATH] "
                   "[--threads N] [--backend NAME]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (!runtime::has_backend(args.backend)) {
    std::fprintf(stderr, "unknown backend '%s'; registered:",
                 args.backend.c_str());
    for (const auto& name : runtime::backend_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fputc('\n', stderr);
    std::exit(2);
  }
  set_global_pool_threads(args.threads);
  return args;
}

inline std::vector<data::Benchmark> selected_benchmarks(const Args& args) {
  if (args.task.empty()) return data::table1_benchmarks();
  return {data::find_benchmark(args.task)};
}

/// Scales a benchmark's sample counts for the run mode. Many-class tasks
/// (ISOLET's 26) get proportionally more samples — the paper's real
/// datasets provide hundreds per class.
inline data::SyntheticSpec sized_spec(const data::Benchmark& b,
                                      bool fast) {
  data::SyntheticSpec spec = b.spec;
  const std::size_t per_class_train = fast ? 40 : 80;
  const std::size_t per_class_test = fast ? 20 : 40;
  spec.train_count =
      std::max<std::size_t>(fast ? 160 : 480,
                            per_class_train * spec.classes);
  spec.test_count = std::max<std::size_t>(fast ? 80 : 240,
                                          per_class_test * spec.classes);
  return spec;
}

/// Accuracy through the selected runtime backend — the one evaluation
/// loop every bench shares (replaces the per-bench hand-rolled
/// predict/compare loops).
inline double backend_accuracy(const Args& args, const vsa::Model& model,
                               const data::Dataset& dataset) {
  return runtime::make_backend(args.backend, model)->accuracy(dataset);
}

/// The execution-environment fields every BENCH_*.json record carries:
/// which backend served the run plus the shared build-provenance block
/// (git SHA, compiler, build type/flags, pool width, telemetry state) —
/// the same fields telemetry::snapshot() reports, from the same helper,
/// so a bench record is always attributable to an exact build.
inline std::string json_runtime_fields(const Args& args) {
  return "  \"backend\": \"" + args.backend + "\",\n" +
         report::provenance_json_fields();
}

/// Registry-routed bench timer: repeats `fn` (one call = `batch`
/// samples) until ~0.2 s total, recording every iteration into the
/// "bench.<name>_ns" latency histogram, then derives samples/second
/// from that histogram's own count/sum delta. The printed table and a
/// telemetry scrape (--metrics-json / metrics_snapshot.json) therefore
/// can never disagree — they read the same clock path and the same
/// accumulator.
inline double timed_sps(const std::string& name, std::size_t batch,
                        const std::function<void()>& fn) {
  telemetry::LatencyHistogram& hist =
      telemetry::histogram("bench." + name + "_ns");
  const telemetry::HistogramSnapshot before = hist.snapshot();
  std::uint64_t elapsed_ns = 0;
  do {
    const std::uint64_t t0 = telemetry::now_ns();
    fn();
    const std::uint64_t dt = telemetry::now_ns() - t0;
    hist.record(dt);
    elapsed_ns += dt;
  } while (elapsed_ns < 200'000'000ull);
  const telemetry::HistogramSnapshot after = hist.snapshot();
  const double iters =
      static_cast<double>(after.count - before.count);
  const double ns = after.sum - before.sum;
  return ns <= 0.0 ? 0.0
                   : iters * static_cast<double>(batch) / (ns * 1e-9);
}

}  // namespace univsa::bench
