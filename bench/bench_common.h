// Shared helpers for the table/figure reproduction binaries.
//
// Every bench accepts:
//   --fast          smaller datasets / fewer epochs (CI-scale smoke run)
//   --task NAME     restrict to one Table I benchmark
//   --csv PATH      also emit the table as CSV
//   --threads N     size the global thread pool (0 = hardware default)
// and prints a paper-vs-measured table to stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "univsa/common/thread_pool.h"
#include "univsa/data/benchmarks.h"

namespace univsa::bench {

struct Args {
  bool fast = false;
  std::string task;        // empty = all
  std::string csv;         // empty = none
  std::size_t threads = 0; // 0 = hardware default
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      args.fast = true;
    } else if (std::strcmp(argv[i], "--task") == 0 && i + 1 < argc) {
      args.task = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.csv = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--fast] [--task NAME] [--csv PATH] "
                   "[--threads N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  set_global_pool_threads(args.threads);
  return args;
}

inline std::vector<data::Benchmark> selected_benchmarks(const Args& args) {
  if (args.task.empty()) return data::table1_benchmarks();
  return {data::find_benchmark(args.task)};
}

/// Scales a benchmark's sample counts for the run mode. Many-class tasks
/// (ISOLET's 26) get proportionally more samples — the paper's real
/// datasets provide hundreds per class.
inline data::SyntheticSpec sized_spec(const data::Benchmark& b,
                                      bool fast) {
  data::SyntheticSpec spec = b.spec;
  const std::size_t per_class_train = fast ? 40 : 80;
  const std::size_t per_class_test = fast ? 20 : 40;
  spec.train_count =
      std::max<std::size_t>(fast ? 160 : 480,
                            per_class_train * spec.classes);
  spec.test_count = std::max<std::size_t>(fast ? 80 : 240,
                                          per_class_test * spec.classes);
  return spec;
}

}  // namespace univsa::bench
