// Streaming saturation sweep (event-driven simulator): drive the ISOLET
// accelerator with periodic arrivals from well below to well above its
// service rate and chart goodput, latency, FIFO pressure, and drops.
//
// Shape claims this reinforces (Fig. 5 / Table IV): throughput saturates
// exactly at the BiConv-bound streaming rate; below saturation latency
// sits at the single-input pipeline latency; past saturation a finite
// input FIFO sheds load instead of stalling the sensor.
//
// A second section measures the *software* serving path on the same task
// configuration through the runtime layer: the reference backend vs the
// selected one (--backend, default packed), single- and multi-threaded,
// plus the micro-batching runtime::Server front-end driven by concurrent
// submitters. Throughputs are recorded in BENCH_stream.json for the perf
// trajectory.
//
// A third section exercises the robustness layer under deliberate
// overload (small queue, slowdown-only fault plan, low-priority flood +
// high-priority deadline stream) and records overload_shed_rate and
// overload_high_p99_ms alongside the throughputs.
//
// A fourth section measures the network serving path (docs/NETWORK.md):
// an open-loop Poisson loadgen against a loopback NetServer, latency
// measured from each request's *scheduled* arrival (coordinated
// omission counted, not hidden), with the p50/p95/p99 tail recorded as
// the net_* fields of BENCH_stream.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <thread>

#include "bench_common.h"
#include "univsa/common/simd.h"
#include "univsa/common/thread_pool.h"
#include "univsa/hw/event_sim.h"
#include "univsa/net/net_client.h"
#include "univsa/net/net_server.h"
#include "univsa/report/table.h"
#include "univsa/runtime/server.h"
#include "univsa/telemetry/telemetry.h"
#include "univsa/vsa/model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  const auto& benchmark =
      args.task.empty() ? data::find_benchmark("ISOLET")
                        : data::find_benchmark(args.task);
  const hw::TimingParams timing;
  hw::EventSimConfig config;
  config.cycles = hw::stage_cycles(benchmark.config);
  config.overhead = timing.controller_overhead;
  config.input_fifo_depth = 4;

  const auto interval = static_cast<std::size_t>(
      timing.controller_overhead *
      static_cast<double>(config.cycles.interval()));
  const std::size_t count = args.fast ? 100 : 400;

  std::printf("== Streaming saturation sweep (%s, FIFO depth %zu) ==\n",
              benchmark.spec.name.c_str(), config.input_fifo_depth);
  std::printf("service interval: %zu cycles -> capacity %.2fk inf/s at "
              "%.0f MHz\n\n",
              interval,
              timing.clock_mhz * 1e3 / static_cast<double>(interval),
              timing.clock_mhz);

  report::TextTable table({"arrival period (cyc)", "offered rate (k/s)",
                           "goodput (k/s)", "drop %", "mean latency (us)",
                           "max FIFO"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const double factor : {4.0, 2.0, 1.2, 1.0, 0.8, 0.5, 0.25}) {
    const auto period = static_cast<std::size_t>(
        static_cast<double>(interval) * factor);
    const hw::EventSimResult r =
        hw::simulate_periodic(config, count, std::max<std::size_t>(
                                                 1, period));
    const double offered =
        timing.clock_mhz * 1e3 / static_cast<double>(std::max<
                                                     std::size_t>(
                                   1, period));
    const double goodput = r.achieved_throughput(timing.clock_mhz) / 1e3;
    const double drop_pct = 100.0 * static_cast<double>(r.dropped) /
                            static_cast<double>(count);
    const double latency_us =
        r.mean_latency_cycles / (timing.clock_mhz);
    table.add_row({std::to_string(period), report::fmt(offered, 2),
                   report::fmt(goodput, 2), report::fmt(drop_pct, 1),
                   report::fmt(latency_us, 1),
                   std::to_string(r.max_fifo_occupancy)});
    csv_rows.push_back({std::to_string(period), report::fmt(offered, 2),
                        report::fmt(goodput, 2), report::fmt(drop_pct, 1),
                        report::fmt(latency_us, 1),
                        std::to_string(r.max_fifo_occupancy)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nShape check: goodput tracks the offered rate until the "
            "BiConv-bound capacity, then plateaus with drops absorbing "
            "the excess — the pipeline never exceeds the Fig. 5 bound.");

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"period", "offered_kps", "goodput_kps", "drop_pct",
                       "latency_us", "max_fifo"},
                      csv_rows);
  }

  // ---- Software serving path through the runtime layer ----
  const vsa::ModelConfig& mc = benchmark.config;
  Rng rng(0x5eed);
  const vsa::Model model = vsa::Model::random(mc, rng);
  const std::size_t n_samples = args.fast ? 64 : 256;
  std::vector<std::vector<std::uint16_t>> samples(n_samples);
  for (auto& s : samples) {
    s.resize(mc.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(mc.M));
    }
  }

  const auto reference = runtime::make_backend("reference", model);
  const auto backend = runtime::make_backend(args.backend, model);
  // Warm both paths once (first batch grows the output vector).
  std::vector<vsa::Prediction> out;
  reference->predict_batch(samples, out, /*parallel=*/false);
  backend->predict_batch(samples, out, /*parallel=*/false);

  // All four paths are timed through the registry ("bench.stream.*_ns"
  // histograms), so the table below and the telemetry snapshot report
  // the exact same measurements.
  const double reference_sps = bench::timed_sps(
      "stream.reference", n_samples,
      [&] { reference->predict_batch(samples, out, /*parallel=*/false); });
  const double engine_serial_sps = bench::timed_sps(
      "stream.engine_serial", n_samples,
      [&] { backend->predict_batch(samples, out, /*parallel=*/false); });
  const double engine_parallel_sps = bench::timed_sps(
      "stream.engine_parallel", n_samples,
      [&] { backend->predict_batch(samples, out, /*parallel=*/true); });

  // The serving front-end: a micro-batching Server fed by concurrent
  // submitter threads, the shape production traffic takes. Measured
  // three ways to price request-scoped tracing: default sampled
  // tracing (the headline server_sps), tracing disabled
  // (trace_sample_every = 0), and telemetry disabled process-wide.
  // timed_sps records into the histogram unconditionally, so the
  // telemetry-off pass still times correctly.
  runtime::ServerOptions server_options;
  server_options.backend = args.backend;
  server_options.max_batch = 32;
  server_options.max_delay_us = 100;
  double server_mean_batch = 0.0;
  const auto serve_sps = [&](const char* label,
                             const runtime::ServerOptions& options) {
    runtime::Server server(model, options);
    const std::size_t submitters = 4;
    const auto pump = [&] {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
          std::vector<std::future<vsa::Prediction>> futures;
          for (std::size_t i = t; i < n_samples; i += submitters) {
            futures.push_back(server.submit(samples[i]));
          }
          for (auto& f : futures) f.get();
        });
      }
      for (auto& t : threads) t.join();
    };
    pump();  // warm
    const double sps = bench::timed_sps(label, n_samples, pump);
    server_mean_batch = server.stats().mean_batch();
    return sps;
  };
  const double server_sps = serve_sps("stream.server", server_options);
  const double headline_mean_batch = server_mean_batch;
  runtime::ServerOptions untraced_options = server_options;
  untraced_options.trace_sample_every = 0;
  const double server_sps_untraced =
      serve_sps("stream.server_untraced", untraced_options);
  telemetry::set_enabled(false);
  const double server_sps_telemetry_off =
      serve_sps("stream.server_telemetry_off", server_options);
  telemetry::set_enabled(true);
  server_mean_batch = headline_mean_batch;
  // Positive = sampled tracing costs throughput vs the untraced server.
  const double trace_overhead_pct =
      server_sps_untraced <= 0.0
          ? 0.0
          : 100.0 * (server_sps_untraced - server_sps) /
                server_sps_untraced;

  // ---- Overload behaviour: the robustness layer under pressure ----
  //
  // A deliberately small queue, a slowdown-only fault plan degrading the
  // backends, low-priority flood threads pushing the queue past its shed
  // watermark, and a high-priority deadline stream riding through. The
  // two numbers that matter for the perf trajectory: what fraction of
  // the flood was shed (availability protection engaged) and the p99
  // client-observed latency of the high-priority stream while it was.
  double overload_shed_rate = 0.0;
  double overload_high_p99_ms = 0.0;
  std::uint64_t overload_shed = 0;
  std::size_t overload_high_completed = 0;
  std::size_t overload_high_total = args.fast ? 60 : 200;
  {
    runtime::FaultSpec slow;
    slow.seed = 7;
    slow.slowdown_rate = 0.25;
    slow.slowdown_us = 500;
    runtime::ServerOptions options;
    options.backend = args.backend;
    options.workers = 2;
    options.max_batch = 16;
    options.max_delay_us = 50;
    options.queue_capacity = 32;  // watermark derives to 24
    options.fault_plan = std::make_shared<runtime::FaultPlan>(slow);
    runtime::Server server(model, options);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> flood_attempts{0};
    std::vector<std::thread> flood;
    for (std::size_t t = 0; t < 2; ++t) {
      flood.emplace_back([&] {
        runtime::SubmitOptions low;
        low.priority = runtime::Priority::kLow;
        std::vector<std::future<vsa::Prediction>> futures;
        std::size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          std::future<vsa::Prediction> f;
          if (server.try_submit(samples[i % n_samples], low, &f) ==
              runtime::SubmitStatus::kOk) {
            futures.push_back(std::move(f));
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          flood_attempts.fetch_add(1, std::memory_order_relaxed);
          ++i;
        }
        for (auto& f : futures) {
          try {
            f.get();
          } catch (const std::exception&) {
            // evicted for a higher class — expected under overload
          }
        }
      });
    }

    runtime::SubmitOptions high;
    high.priority = runtime::Priority::kHigh;
    high.deadline_us = 250000;
    std::vector<double> high_latency_ms;
    high_latency_ms.reserve(overload_high_total);
    for (std::size_t i = 0; i < overload_high_total; ++i) {
      const auto start = std::chrono::steady_clock::now();
      try {
        server.submit(samples[i % n_samples], high).get();
        high_latency_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count());
      } catch (const std::exception&) {
        // deadline miss or injected fault: excluded from the latency
        // distribution, visible in overload_high_completed.
      }
    }
    stop.store(true);
    for (auto& t : flood) t.join();
    server.shutdown();

    overload_high_completed = high_latency_ms.size();
    if (!high_latency_ms.empty()) {
      std::sort(high_latency_ms.begin(), high_latency_ms.end());
      const std::size_t idx = std::min(
          high_latency_ms.size() - 1,
          static_cast<std::size_t>(
              static_cast<double>(high_latency_ms.size()) * 0.99));
      overload_high_p99_ms = high_latency_ms[idx];
    }
    const runtime::ServerStats overload_stats = server.stats();
    overload_shed = overload_stats.shed;
    const std::uint64_t attempts = flood_attempts.load();
    overload_shed_rate =
        attempts == 0 ? 0.0
                      : static_cast<double>(overload_shed) /
                            static_cast<double>(attempts);
    std::printf("\n== Overload (queue %zu, watermark %zu, slowdown-only "
                "fault plan) ==\n",
                options.queue_capacity, server.shed_watermark());
    std::printf("low-priority flood: %llu attempts, %llu shed "
                "(%.1f%%)\n",
                static_cast<unsigned long long>(attempts),
                static_cast<unsigned long long>(overload_shed),
                100.0 * overload_shed_rate);
    std::printf("high-priority stream: %zu/%zu within 250 ms deadline, "
                "p99 %.2f ms\n",
                overload_high_completed, overload_high_total,
                overload_high_p99_ms);
  }

  // ---- Network serving path: open-loop Poisson loadgen ----
  //
  // Arrivals follow a seeded Poisson process at half the measured
  // server throughput (comfortably below saturation, so the tail
  // reflects the wire + scheduling cost, not queue growth). Open loop:
  // each request's latency is measured from its *scheduled* arrival
  // time, so a stalled server shows up as tail latency instead of
  // silently slowing the generator down (no coordinated omission).
  const std::size_t net_requests = args.fast ? 150 : 600;
  const double net_offered_rps =
      std::max(200.0, std::min(server_sps * 0.5, 20000.0));
  double net_achieved_rps = 0.0;
  double net_p50_ms = 0.0, net_p95_ms = 0.0, net_p99_ms = 0.0;
  std::size_t net_errors = 0;
  {
    auto rt = std::make_shared<runtime::Server>(model, server_options);
    net::NetServer front(rt);
    // Deterministic exponential inter-arrival schedule.
    std::mt19937_64 arrivals_rng(0xa11fULL);
    std::exponential_distribution<double> interarrival(net_offered_rps);
    std::vector<double> arrival_s(net_requests);
    double clock = 0.0;
    for (auto& t : arrival_s) {
      clock += interarrival(arrivals_rng);
      t = clock;
    }

    constexpr std::size_t kLoadgenThreads = 4;
    std::vector<double> latency_ms(net_requests, -1.0);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> errors{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> loadgen;
    for (std::size_t t = 0; t < kLoadgenThreads; ++t) {
      loadgen.emplace_back([&] {
        net::NetClientOptions client_options;
        client_options.host = front.host();
        client_options.port = front.port();
        net::NetClient client(client_options);
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= net_requests) break;
          const auto scheduled =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(arrival_s[i]));
          std::this_thread::sleep_until(scheduled);
          try {
            (void)client.predict(samples[i % n_samples]);
            latency_ms[i] = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                scheduled)
                                .count();
          } catch (const std::exception&) {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : loadgen) t.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    front.shutdown();
    rt->shutdown();

    net_errors = errors.load();
    std::vector<double> completed_ms;
    completed_ms.reserve(net_requests);
    for (const double ms : latency_ms) {
      if (ms >= 0.0) completed_ms.push_back(ms);
    }
    if (!completed_ms.empty()) {
      std::sort(completed_ms.begin(), completed_ms.end());
      const auto pct = [&](double q) {
        const std::size_t idx = std::min(
            completed_ms.size() - 1,
            static_cast<std::size_t>(
                static_cast<double>(completed_ms.size()) * q));
        return completed_ms[idx];
      };
      net_p50_ms = pct(0.50);
      net_p95_ms = pct(0.95);
      net_p99_ms = pct(0.99);
      net_achieved_rps =
          elapsed_s <= 0.0 ? 0.0
                           : static_cast<double>(completed_ms.size()) /
                                 elapsed_s;
    }
    std::printf("\n== Network serving path (open-loop Poisson, %zu "
                "requests at %.0f req/s offered) ==\n",
                net_requests, net_offered_rps);
    std::printf("achieved %.0f req/s, %zu errors; latency from "
                "scheduled arrival: p50 %.2f ms  p95 %.2f ms  p99 %.2f "
                "ms\n",
                net_achieved_rps, net_errors, net_p50_ms, net_p95_ms,
                net_p99_ms);
  }

  const std::size_t threads = global_pool().thread_count();
  std::printf("\n== Software predict throughput (%s, %zu samples, %zu "
              "pool thread%s, backend %s, simd %s) ==\n",
              benchmark.spec.name.c_str(), n_samples, threads,
              threads == 1 ? "" : "s", args.backend.c_str(),
              simd::to_string(simd::active_isa()));
  report::TextTable sw_table(
      {"path", "throughput (inf/s)", "speedup vs reference"});
  sw_table.add_row({"reference per-sample", report::fmt(reference_sps, 0),
                    report::fmt(1.0, 2)});
  sw_table.add_row({args.backend + " (1 thread)",
                    report::fmt(engine_serial_sps, 0),
                    report::fmt(engine_serial_sps / reference_sps, 2)});
  sw_table.add_row({args.backend + " (parallel)",
                    report::fmt(engine_parallel_sps, 0),
                    report::fmt(engine_parallel_sps / reference_sps, 2)});
  sw_table.add_row({"server (4 submitters, mean batch " +
                        report::fmt(server_mean_batch, 1) + ")",
                    report::fmt(server_sps, 0),
                    report::fmt(server_sps / reference_sps, 2)});
  sw_table.add_row({"server, tracing off",
                    report::fmt(server_sps_untraced, 0),
                    report::fmt(server_sps_untraced / reference_sps, 2)});
  sw_table.add_row({"server, telemetry off",
                    report::fmt(server_sps_telemetry_off, 0),
                    report::fmt(server_sps_telemetry_off / reference_sps,
                                2)});
  std::fputs(sw_table.to_string().c_str(), stdout);
  std::printf("sampled-tracing overhead: %.2f%% of untraced server "
              "throughput\n",
              trace_overhead_pct);

  {
    std::ofstream json("BENCH_stream.json");
    json << "{\n"
         << "  \"task\": \"" << benchmark.spec.name << "\",\n"
         << "  \"samples\": " << n_samples << ",\n"
         << bench::json_runtime_fields(args)
         << "  \"reference_sps\": " << report::fmt(reference_sps, 1)
         << ",\n"
         << "  \"engine_serial_sps\": "
         << report::fmt(engine_serial_sps, 1) << ",\n"
         << "  \"engine_parallel_sps\": "
         << report::fmt(engine_parallel_sps, 1) << ",\n"
         << "  \"engine_serial_speedup\": "
         << report::fmt(engine_serial_sps / reference_sps, 3) << ",\n"
         << "  \"engine_parallel_speedup\": "
         << report::fmt(engine_parallel_sps / reference_sps, 3) << ",\n"
         << "  \"server_sps\": " << report::fmt(server_sps, 1) << ",\n"
         << "  \"server_sps_untraced\": "
         << report::fmt(server_sps_untraced, 1) << ",\n"
         << "  \"server_sps_telemetry_off\": "
         << report::fmt(server_sps_telemetry_off, 1) << ",\n"
         << "  \"trace_overhead_pct\": "
         << report::fmt(trace_overhead_pct, 2) << ",\n"
         << "  \"server_mean_batch\": "
         << report::fmt(server_mean_batch, 2) << ",\n"
         << "  \"overload_shed_rate\": "
         << report::fmt(overload_shed_rate, 4) << ",\n"
         << "  \"overload_shed\": " << overload_shed << ",\n"
         << "  \"overload_high_completed\": " << overload_high_completed
         << ",\n"
         << "  \"overload_high_total\": " << overload_high_total << ",\n"
         << "  \"overload_high_p99_ms\": "
         << report::fmt(overload_high_p99_ms, 3) << ",\n"
         << "  \"net_loadgen_requests\": " << net_requests << ",\n"
         << "  \"net_loadgen_offered_rps\": "
         << report::fmt(net_offered_rps, 1) << ",\n"
         << "  \"net_loadgen_achieved_rps\": "
         << report::fmt(net_achieved_rps, 1) << ",\n"
         << "  \"net_loadgen_errors\": " << net_errors << ",\n"
         << "  \"net_p50_ms\": " << report::fmt(net_p50_ms, 3) << ",\n"
         << "  \"net_p95_ms\": " << report::fmt(net_p95_ms, 3) << ",\n"
         << "  \"net_p99_ms\": " << report::fmt(net_p99_ms, 3) << "\n"
         << "}\n";
  }
  if (telemetry::write_json_file("metrics_snapshot.json")) {
    std::puts("\nWrote BENCH_stream.json and metrics_snapshot.json");
  } else {
    std::puts("\nWrote BENCH_stream.json");
  }
  return 0;
}
