// Streaming saturation sweep (event-driven simulator): drive the ISOLET
// accelerator with periodic arrivals from well below to well above its
// service rate and chart goodput, latency, FIFO pressure, and drops.
//
// Shape claims this reinforces (Fig. 5 / Table IV): throughput saturates
// exactly at the BiConv-bound streaming rate; below saturation latency
// sits at the single-input pipeline latency; past saturation a finite
// input FIFO sheds load instead of stalling the sensor.
//
// A second section measures the *software* serving path on the same task
// configuration through the runtime layer: the reference backend vs the
// selected one (--backend, default packed), single- and multi-threaded,
// plus the micro-batching runtime::Server front-end driven by concurrent
// submitters. Throughputs are recorded in BENCH_stream.json for the perf
// trajectory.
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>

#include "bench_common.h"
#include "univsa/common/thread_pool.h"
#include "univsa/hw/event_sim.h"
#include "univsa/report/table.h"
#include "univsa/runtime/server.h"
#include "univsa/telemetry/telemetry.h"
#include "univsa/vsa/model.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  const auto& benchmark =
      args.task.empty() ? data::find_benchmark("ISOLET")
                        : data::find_benchmark(args.task);
  const hw::TimingParams timing;
  hw::EventSimConfig config;
  config.cycles = hw::stage_cycles(benchmark.config);
  config.overhead = timing.controller_overhead;
  config.input_fifo_depth = 4;

  const auto interval = static_cast<std::size_t>(
      timing.controller_overhead *
      static_cast<double>(config.cycles.interval()));
  const std::size_t count = args.fast ? 100 : 400;

  std::printf("== Streaming saturation sweep (%s, FIFO depth %zu) ==\n",
              benchmark.spec.name.c_str(), config.input_fifo_depth);
  std::printf("service interval: %zu cycles -> capacity %.2fk inf/s at "
              "%.0f MHz\n\n",
              interval,
              timing.clock_mhz * 1e3 / static_cast<double>(interval),
              timing.clock_mhz);

  report::TextTable table({"arrival period (cyc)", "offered rate (k/s)",
                           "goodput (k/s)", "drop %", "mean latency (us)",
                           "max FIFO"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const double factor : {4.0, 2.0, 1.2, 1.0, 0.8, 0.5, 0.25}) {
    const auto period = static_cast<std::size_t>(
        static_cast<double>(interval) * factor);
    const hw::EventSimResult r =
        hw::simulate_periodic(config, count, std::max<std::size_t>(
                                                 1, period));
    const double offered =
        timing.clock_mhz * 1e3 / static_cast<double>(std::max<
                                                     std::size_t>(
                                   1, period));
    const double goodput = r.achieved_throughput(timing.clock_mhz) / 1e3;
    const double drop_pct = 100.0 * static_cast<double>(r.dropped) /
                            static_cast<double>(count);
    const double latency_us =
        r.mean_latency_cycles / (timing.clock_mhz);
    table.add_row({std::to_string(period), report::fmt(offered, 2),
                   report::fmt(goodput, 2), report::fmt(drop_pct, 1),
                   report::fmt(latency_us, 1),
                   std::to_string(r.max_fifo_occupancy)});
    csv_rows.push_back({std::to_string(period), report::fmt(offered, 2),
                        report::fmt(goodput, 2), report::fmt(drop_pct, 1),
                        report::fmt(latency_us, 1),
                        std::to_string(r.max_fifo_occupancy)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nShape check: goodput tracks the offered rate until the "
            "BiConv-bound capacity, then plateaus with drops absorbing "
            "the excess — the pipeline never exceeds the Fig. 5 bound.");

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"period", "offered_kps", "goodput_kps", "drop_pct",
                       "latency_us", "max_fifo"},
                      csv_rows);
  }

  // ---- Software serving path through the runtime layer ----
  const vsa::ModelConfig& mc = benchmark.config;
  Rng rng(0x5eed);
  const vsa::Model model = vsa::Model::random(mc, rng);
  const std::size_t n_samples = args.fast ? 64 : 256;
  std::vector<std::vector<std::uint16_t>> samples(n_samples);
  for (auto& s : samples) {
    s.resize(mc.features());
    for (auto& v : s) {
      v = static_cast<std::uint16_t>(rng.uniform_index(mc.M));
    }
  }

  const auto reference = runtime::make_backend("reference", model);
  const auto backend = runtime::make_backend(args.backend, model);
  // Warm both paths once (first batch grows the output vector).
  std::vector<vsa::Prediction> out;
  reference->predict_batch(samples, out, /*parallel=*/false);
  backend->predict_batch(samples, out, /*parallel=*/false);

  // All four paths are timed through the registry ("bench.stream.*_ns"
  // histograms), so the table below and the telemetry snapshot report
  // the exact same measurements.
  const double reference_sps = bench::timed_sps(
      "stream.reference", n_samples,
      [&] { reference->predict_batch(samples, out, /*parallel=*/false); });
  const double engine_serial_sps = bench::timed_sps(
      "stream.engine_serial", n_samples,
      [&] { backend->predict_batch(samples, out, /*parallel=*/false); });
  const double engine_parallel_sps = bench::timed_sps(
      "stream.engine_parallel", n_samples,
      [&] { backend->predict_batch(samples, out, /*parallel=*/true); });

  // The serving front-end: a micro-batching Server fed by concurrent
  // submitter threads, the shape production traffic takes.
  runtime::ServerOptions server_options;
  server_options.backend = args.backend;
  server_options.max_batch = 32;
  server_options.max_delay_us = 100;
  double server_sps = 0.0;
  double server_mean_batch = 0.0;
  {
    runtime::Server server(model, server_options);
    const std::size_t submitters = 4;
    const auto pump = [&] {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
          std::vector<std::future<vsa::Prediction>> futures;
          for (std::size_t i = t; i < n_samples; i += submitters) {
            futures.push_back(server.submit(samples[i]));
          }
          for (auto& f : futures) f.get();
        });
      }
      for (auto& t : threads) t.join();
    };
    pump();  // warm
    server_sps = bench::timed_sps("stream.server", n_samples, pump);
    server_mean_batch = server.stats().mean_batch();
  }

  const std::size_t threads = global_pool().thread_count();
  std::printf("\n== Software predict throughput (%s, %zu samples, %zu "
              "pool thread%s, backend %s) ==\n",
              benchmark.spec.name.c_str(), n_samples, threads,
              threads == 1 ? "" : "s", args.backend.c_str());
  report::TextTable sw_table(
      {"path", "throughput (inf/s)", "speedup vs reference"});
  sw_table.add_row({"reference per-sample", report::fmt(reference_sps, 0),
                    report::fmt(1.0, 2)});
  sw_table.add_row({args.backend + " (1 thread)",
                    report::fmt(engine_serial_sps, 0),
                    report::fmt(engine_serial_sps / reference_sps, 2)});
  sw_table.add_row({args.backend + " (parallel)",
                    report::fmt(engine_parallel_sps, 0),
                    report::fmt(engine_parallel_sps / reference_sps, 2)});
  sw_table.add_row({"server (4 submitters, mean batch " +
                        report::fmt(server_mean_batch, 1) + ")",
                    report::fmt(server_sps, 0),
                    report::fmt(server_sps / reference_sps, 2)});
  std::fputs(sw_table.to_string().c_str(), stdout);

  {
    std::ofstream json("BENCH_stream.json");
    json << "{\n"
         << "  \"task\": \"" << benchmark.spec.name << "\",\n"
         << "  \"samples\": " << n_samples << ",\n"
         << bench::json_runtime_fields(args)
         << "  \"reference_sps\": " << report::fmt(reference_sps, 1)
         << ",\n"
         << "  \"engine_serial_sps\": "
         << report::fmt(engine_serial_sps, 1) << ",\n"
         << "  \"engine_parallel_sps\": "
         << report::fmt(engine_parallel_sps, 1) << ",\n"
         << "  \"engine_serial_speedup\": "
         << report::fmt(engine_serial_sps / reference_sps, 3) << ",\n"
         << "  \"engine_parallel_speedup\": "
         << report::fmt(engine_parallel_sps / reference_sps, 3) << ",\n"
         << "  \"server_sps\": " << report::fmt(server_sps, 1) << ",\n"
         << "  \"server_mean_batch\": "
         << report::fmt(server_mean_batch, 2) << "\n"
         << "}\n";
  }
  if (telemetry::write_json_file("metrics_snapshot.json")) {
    std::puts("\nWrote BENCH_stream.json and metrics_snapshot.json");
  } else {
    std::puts("\nWrote BENCH_stream.json");
  }
  return 0;
}
