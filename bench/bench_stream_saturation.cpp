// Streaming saturation sweep (event-driven simulator): drive the ISOLET
// accelerator with periodic arrivals from well below to well above its
// service rate and chart goodput, latency, FIFO pressure, and drops.
//
// Shape claims this reinforces (Fig. 5 / Table IV): throughput saturates
// exactly at the BiConv-bound streaming rate; below saturation latency
// sits at the single-input pipeline latency; past saturation a finite
// input FIFO sheds load instead of stalling the sensor.
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/event_sim.h"
#include "univsa/report/table.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  const auto& benchmark =
      args.task.empty() ? data::find_benchmark("ISOLET")
                        : data::find_benchmark(args.task);
  const hw::TimingParams timing;
  hw::EventSimConfig config;
  config.cycles = hw::stage_cycles(benchmark.config);
  config.overhead = timing.controller_overhead;
  config.input_fifo_depth = 4;

  const auto interval = static_cast<std::size_t>(
      timing.controller_overhead *
      static_cast<double>(config.cycles.interval()));
  const std::size_t count = args.fast ? 100 : 400;

  std::printf("== Streaming saturation sweep (%s, FIFO depth %zu) ==\n",
              benchmark.spec.name.c_str(), config.input_fifo_depth);
  std::printf("service interval: %zu cycles -> capacity %.2fk inf/s at "
              "%.0f MHz\n\n",
              interval,
              timing.clock_mhz * 1e3 / static_cast<double>(interval),
              timing.clock_mhz);

  report::TextTable table({"arrival period (cyc)", "offered rate (k/s)",
                           "goodput (k/s)", "drop %", "mean latency (us)",
                           "max FIFO"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const double factor : {4.0, 2.0, 1.2, 1.0, 0.8, 0.5, 0.25}) {
    const auto period = static_cast<std::size_t>(
        static_cast<double>(interval) * factor);
    const hw::EventSimResult r =
        hw::simulate_periodic(config, count, std::max<std::size_t>(
                                                 1, period));
    const double offered =
        timing.clock_mhz * 1e3 / static_cast<double>(std::max<
                                                     std::size_t>(
                                   1, period));
    const double goodput = r.achieved_throughput(timing.clock_mhz) / 1e3;
    const double drop_pct = 100.0 * static_cast<double>(r.dropped) /
                            static_cast<double>(count);
    const double latency_us =
        r.mean_latency_cycles / (timing.clock_mhz);
    table.add_row({std::to_string(period), report::fmt(offered, 2),
                   report::fmt(goodput, 2), report::fmt(drop_pct, 1),
                   report::fmt(latency_us, 1),
                   std::to_string(r.max_fifo_occupancy)});
    csv_rows.push_back({std::to_string(period), report::fmt(offered, 2),
                        report::fmt(goodput, 2), report::fmt(drop_pct, 1),
                        report::fmt(latency_us, 1),
                        std::to_string(r.max_fifo_occupancy)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nShape check: goodput tracks the offered rate until the "
            "BiConv-bound capacity, then plateaus with drops absorbing "
            "the excess — the pipeline never exceeds the Fig. 5 bound.");

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"period", "offered_kps", "goodput_kps", "drop_pct",
                       "latency_us", "max_fifo"},
                      csv_rows);
  }
  return 0;
}
