// Online adaptation under session drift — the BCI non-stationarity
// scenario the paper's reference [22] motivates. Trains on session A,
// evaluates the frozen model on progressively drifted sessions, then
// adapts only the class vectors with the on-device HDC update and
// re-evaluates. Also sweeps how many adaptation samples are needed.
#include <cstdio>

#include "bench_common.h"
#include "univsa/report/table.h"
#include "univsa/train/online_retrainer.h"
#include "univsa/train/univsa_trainer.h"

int main(int argc, char** argv) {
  using namespace univsa;
  const bench::Args args = bench::parse_args(argc, argv);

  const auto& benchmark = data::find_benchmark(
      args.task.empty() ? "BCI-III-V" : args.task);
  data::SyntheticSpec base = benchmark.spec;
  base.train_count = args.fast ? 160 : 320;
  base.test_count = args.fast ? 80 : 160;

  std::printf("== Online adaptation under session drift (%s) ==\n",
              benchmark.spec.name.c_str());
  const data::SyntheticResult session_a = data::generate(base);
  train::TrainOptions options;
  options.epochs = args.fast ? 8 : 15;
  options.seed = 7;
  const auto trained =
      train::train_univsa(benchmark.config, session_a.train, options);
  std::printf("session-A model: accuracy %.4f on session A\n\n",
              trained.model.accuracy(session_a.test));

  report::TextTable table({"drift", "frozen acc", "adapted acc",
                           "recovered", "flipped C lanes",
                           "updates ep.1"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const double drift : {0.0, 0.25, 0.5, 0.75}) {
    data::SyntheticSpec drifted = base;
    drifted.drift = drift;
    drifted.drift_seed = 11;
    const data::SyntheticResult session_b = data::generate(drifted);
    const double frozen = trained.model.accuracy(session_b.test);
    const train::OnlineRetrainResult adapted =
        train::adapt_class_vectors(trained.model, session_b.train);
    const double recovered = adapted.model.accuracy(session_b.test);
    table.add_row({report::fmt(drift, 2), report::fmt(frozen),
                   report::fmt(recovered),
                   report::fmt(recovered - frozen, 4),
                   std::to_string(adapted.flipped_lanes),
                   std::to_string(adapted.updates_per_epoch.front())});
    csv_rows.push_back({report::fmt(drift, 2), report::fmt(frozen),
                        report::fmt(recovered),
                        report::fmt(recovered - frozen, 4)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Sample-efficiency sweep at a fixed drift.
  data::SyntheticSpec drifted = base;
  drifted.drift = 0.5;
  drifted.drift_seed = 11;
  const data::SyntheticResult session_b = data::generate(drifted);
  const double frozen = trained.model.accuracy(session_b.test);
  std::puts("\nAdaptation-sample efficiency at drift 0.50:");
  report::TextTable sweep({"adaptation samples", "adapted acc",
                           "gain over frozen"});
  for (const std::size_t count : {16u, 64u, 160u}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < std::min<std::size_t>(
                                    count, session_b.train.size());
         ++i) {
      indices.push_back(i);
    }
    const data::Dataset subset = session_b.train.subset(indices);
    const auto adapted =
        train::adapt_class_vectors(trained.model, subset);
    const double acc = adapted.model.accuracy(session_b.test);
    sweep.add_row({std::to_string(indices.size()), report::fmt(acc),
                   report::fmt(acc - frozen, 4)});
  }
  std::fputs(sweep.to_string().c_str(), stdout);
  std::puts("\nShape check: the frozen model degrades with drift; the "
            "class-vector-only update (the only piece an implant can "
            "afford to touch) recovers a large share of the loss, with "
            "usable gains from tens of samples.");

  if (!args.csv.empty()) {
    report::write_csv(args.csv,
                      {"drift", "frozen", "adapted", "recovered"},
                      csv_rows);
  }
  return 0;
}
