// Ablations of the design choices DESIGN.md §5 calls out, beyond the
// paper's Fig. 4:
//   1. DVP mask fraction ρ — how many features deserve the wide VB_H
//      (the paper fixes the mechanism but not ρ; we use 0.5 by default),
//      with the Eq. 5 memory consequence of each choice.
//   2. Soft-voting width Θ — accuracy vs class-vector memory.
//   3. BiConv kernel size D_K — accuracy vs the Eq. 6 resource term and
//      the α-cycle BiConv latency.
// Each sweep holds everything else at the benchmark's Table I values.
#include <cstdio>

#include "bench_common.h"
#include "univsa/hw/timing_model.h"
#include "univsa/report/table.h"
#include "univsa/train/univsa_trainer.h"
#include "univsa/vsa/memory_model.h"

namespace {

using namespace univsa;

double train_accuracy(const vsa::ModelConfig& config,
                      const data::SyntheticResult& ds, bool fast,
                      double mask_fraction = 0.5) {
  train::TrainOptions opts;
  opts.epochs = fast ? 5 : 12;
  opts.seed = 7;
  opts.mask_high_fraction = mask_fraction;
  return train::train_univsa(config, ds.train, opts)
      .model.accuracy(ds.test);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);

  // HAR-style task, reduced geometry so the sweeps stay cheap.
  data::SyntheticSpec spec = data::find_benchmark("HAR").spec;
  spec.windows = 8;
  spec.length = 18;
  spec.train_count = args.fast ? 150 : 300;
  spec.test_count = args.fast ? 80 : 160;
  const data::SyntheticResult ds = data::generate(spec);

  vsa::ModelConfig base = data::find_benchmark("HAR").config;
  base.W = spec.windows;
  base.L = spec.length;

  std::puts("== Ablation 1: DVP mask fraction ρ (share of VB_H features) ==");
  report::TextTable rho_table({"ρ", "accuracy", "note"});
  for (const double rho : {0.25, 0.5, 0.75, 1.0}) {
    const double acc = train_accuracy(base, ds, args.fast, rho);
    rho_table.add_row({report::fmt(rho, 2), report::fmt(acc),
                       rho == 1.0 ? "all features wide (no DVP saving)"
                                  : ""});
  }
  std::fputs(rho_table.to_string().c_str(), stdout);
  std::puts("(V-table memory is fixed by Eq. 5's M·(D_H+D_L) term; ρ "
            "trades which features get the wide projection.)");

  std::puts("\n== Ablation 2: soft-voting width Θ ==");
  report::TextTable theta_table(
      {"Θ", "accuracy", "memory KB (Eq. 5)", "class-vector bits"});
  for (const std::size_t theta : {1u, 3u, 5u, 7u}) {
    vsa::ModelConfig c = base;
    c.Theta = theta;
    const double acc = train_accuracy(c, ds, args.fast);
    theta_table.add_row(
        {std::to_string(theta), report::fmt(acc),
         report::fmt(vsa::memory_kb(c), 2),
         std::to_string(vsa::memory_breakdown(c).class_vectors)});
  }
  std::fputs(theta_table.to_string().c_str(), stdout);

  std::puts("\n== Ablation 3: BiConv kernel size D_K ==");
  report::TextTable dk_table({"D_K", "accuracy", "Eq.6 resource units",
                              "BiConv cycles", "α"});
  for (const std::size_t dk : {1u, 3u, 5u}) {
    vsa::ModelConfig c = base;
    c.D_K = dk;
    const double acc = train_accuracy(c, ds, args.fast);
    dk_table.add_row({std::to_string(dk), report::fmt(acc),
                      std::to_string(vsa::resource_units(c)),
                      std::to_string(hw::stage_cycles(c).biconv),
                      std::to_string(hw::conv_iteration_cycles(c))});
  }
  std::fputs(dk_table.to_string().c_str(), stdout);

  std::puts(
      "\nShape expectations: Θ shows diminishing returns (SV mainly "
      "relieves underfitting); D_K=1 loses the feature-interaction gain "
      "(it degenerates to per-position mixing); larger D_K pays linearly "
      "in Eq. 6 resources and in BiConv cycles — the trade Eq. 7 prices.");
  return 0;
}
